"""End-to-end tests of the cluster gateway over real sockets.

Each test boots a small fleet of thread-hosted ``repro-server``
backends plus a thread-hosted gateway, and talks to the gateway with
the ordinary blocking :class:`repro.server.Client` — the gateway
speaks the same protocol, so the client needs no cluster awareness.
The failover tests kill real backends and assert that solves re-shard
to ring successors with bit-identical results.
"""

import concurrent.futures
import time

import pytest

from repro.api import AssignmentSession, Problem
from repro.cluster import GatewayConfig, running_gateway, serve_gateway_in_thread
from repro.errors import ServerError, ServerUnavailableError
from repro.server import Client, ServerConfig, serve_in_thread

from .conftest import random_instance

ENGINE_CONFIGS = (
    "sb",
    "sb-update",
    "sb-deltasky",
    "sb-alt",
    "sb-two-skylines",
    "chain",
    "sb-vec",
    "sb-deltasky-vec",
)


def make_problem(nf=6, no=24, dims=3, seed=5, method="sb", **options):
    functions, objects = random_instance(nf, no, dims, seed=seed)
    return Problem.from_sets(objects, functions, method=method, options=options)


def gateway_config(addresses, **overrides) -> GatewayConfig:
    """Test-speed gateway: fast probes, immediate-ish down marking."""
    defaults = dict(
        backends=tuple(addresses),
        port=0,
        probe_interval_seconds=0.2,
        probe_timeout_seconds=1.0,
        down_after=2,
        retry_after_seconds=0.05,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


class FleetFixture:
    """N thread-hosted backends + one gateway, with kill/restart."""

    def __init__(self, n: int):
        self.handles = [serve_in_thread(ServerConfig(port=0)) for _ in range(n)]
        self.addresses = [f"127.0.0.1:{h.port}" for h in self.handles]
        self.gateway = serve_gateway_in_thread(gateway_config(self.addresses))

    def owner_address(self, problem: Problem) -> str:
        fleet = self.gateway.gateway._fleet
        owner = fleet.owner(problem.instance_digest())
        assert owner is not None
        return owner.address

    def handle_for(self, address: str):
        return self.handles[self.addresses.index(address)]

    def kill(self, address: str) -> None:
        self.handle_for(address).close()

    def restart(self, address: str) -> None:
        port = int(address.rsplit(":", 1)[1])
        self.handles[self.addresses.index(address)] = serve_in_thread(
            ServerConfig(port=port)
        )

    def wait_alive(self, address: str, alive: bool, timeout: float = 15.0):
        deadline = time.monotonic() + timeout
        backend = self.gateway.gateway._fleet.backends[address]
        while time.monotonic() < deadline:
            if backend.alive == alive:
                return
            time.sleep(0.05)
        raise AssertionError(
            f"backend {address} never became {'alive' if alive else 'down'}"
        )

    def close(self) -> None:
        self.gateway.close()
        for handle in self.handles:
            if handle.thread.is_alive():
                handle.close()


@pytest.fixture()
def fleet():
    fixture = FleetFixture(3)
    try:
        yield fixture
    finally:
        fixture.close()


@pytest.fixture()
def client(fleet):
    with Client(fleet.gateway.base_url) as c:
        yield c


def test_gateway_health_reports_ring_membership(fleet, client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["role"] == "gateway"
    assert health["ring"]["alive"] == 3
    assert health["ring"]["configured"] == 3
    assert sorted(health["ring"]["members"]) == sorted(fleet.addresses)
    for address in fleet.addresses:
        snapshot = health["backends"][address]
        assert snapshot["alive"] is True
        # Load signals lifted from each backend's own /healthz.
        assert snapshot["queue_depth"] == 0
        assert snapshot["jobs_inflight"] == 0
        assert snapshot["version"] == health["version"]


def test_gateway_solves_bit_identical_to_direct_for_all_engine_configs(
    fleet, client
):
    """The acceptance contract: every engine config solved through the
    gateway returns exactly what a direct single-server (and local
    session) solve returns — same pairs, same scores, same resolved
    method."""
    problem = make_problem(seed=11)
    pid = client.register(problem)
    with AssignmentSession(problem) as session:
        for method in ENGINE_CONFIGS + ("auto",):
            via_gateway = client.solve(pid, method=method)
            direct = session.solve(problem.with_method(method))
            assert via_gateway.to_dict()["pairs"] == direct.to_dict()["pairs"]
            assert via_gateway.method == direct.method
            assert via_gateway.total_score() == direct.total_score()


def test_sticky_routing_keeps_method_variants_on_one_backend(fleet, client):
    """instance_digest excludes the solver section, so every method
    variant of one catalogue forwards to the same backend (one R-tree
    build per catalogue, fleet-wide)."""
    problem = make_problem(seed=23)
    pid = client.register(problem)
    expected = fleet.owner_address(problem)
    for method in ("sb", "chain", "sb-deltasky"):
        _, body = Client(fleet.gateway.base_url).request(
            "POST", f"/v1/problems/{pid}/solve", {"method": method}
        )
        assert body["backend"] == expected


def test_distinct_catalogues_spread_across_backends(fleet, client):
    """With enough distinct catalogues the ring uses the whole fleet."""
    backends = set()
    for seed in range(12):
        problem = make_problem(seed=seed)
        backends.add(fleet.owner_address(problem))
        client.register(problem)
    assert len(backends) >= 2


def test_async_jobs_route_by_prefix_and_diff_works_cross_backend(
    fleet, client
):
    # Two catalogues owned by different backends (seeds chosen at
    # runtime off the live ring, so ephemeral ports can't break this).
    seeds = iter(range(100))
    problem_a = make_problem(seed=next(seeds))
    owner_a = fleet.owner_address(problem_a)
    problem_b = None
    for seed in seeds:
        candidate = make_problem(seed=seed)
        if fleet.owner_address(candidate) != owner_a:
            problem_b = candidate
            break
    assert problem_b is not None

    jid_a = client.submit(client.register(problem_a))
    jid_b = client.submit(client.register(problem_b))
    for jid in (jid_a, jid_b):
        assert "@" in jid
        record = client.job(jid)
        assert record["job_id"] == jid  # poll echoes the prefixed id
    solution_a = client.result(jid_a)
    solution_b = client.result(jid_b)

    # Same-backend diff delegates to that backend; cross-backend diff
    # is computed by the gateway from both solutions.  Either way the
    # payload shape matches the single-server /v1/diff contract.
    jid_a2 = client.submit(client.register(problem_a), method="chain")
    client.result(jid_a2)
    same = client.diff(jid_a, jid_a2)
    assert same["identical"] is True and same["units_changed"] == 0

    cross = client.diff(jid_a, jid_b)
    assert cross["a"] == jid_a and cross["b"] == jid_b
    assert cross["identical"] is (
        solution_a.as_dict() == solution_b.as_dict()
    )

    with pytest.raises(ServerError) as excinfo:
        client.job("deadbeef@job-00000001")
    assert excinfo.value.status == 404


def test_failover_reshards_to_successor_with_identical_solution(fleet, client):
    problem = make_problem(nf=8, no=40, seed=31)
    pid = client.register(problem)
    before = client.solve(pid)
    owner = fleet.owner_address(problem)

    fleet.kill(owner)
    # No probe wait needed: the forward path marks the backend down on
    # the first refused connection and re-shards within the request.
    after = client.solve(pid)
    assert after.to_dict()["pairs"] == before.to_dict()["pairs"]
    assert after.total_score() == before.total_score()
    assert fleet.owner_address(problem) != owner

    metrics = client.metrics()
    assert metrics["gateway"]["reshards_total"] >= 1
    # The successor had never seen the problem: the gateway replayed
    # the remembered registration before retrying the solve.
    assert metrics["gateway"]["reregistrations_total"] >= 1
    assert metrics["gateway"]["backends_alive"] == 2
    assert metrics["backends"][owner]["alive"] is False
    assert client.health()["status"] == "degraded"


def test_failover_is_bit_identical_for_every_engine_config(fleet, client):
    """Kill the owner mid-sequence: every engine config re-solved on
    the ring successor matches the pre-failover solution exactly."""
    problem = make_problem(seed=47)
    pid = client.register(problem)
    before = {
        method: client.solve(pid, method=method)
        for method in ENGINE_CONFIGS + ("auto",)
    }
    fleet.kill(fleet.owner_address(problem))
    for method, expected in before.items():
        resolved = client.solve(pid, method=method)
        assert resolved.to_dict()["pairs"] == expected.to_dict()["pairs"]
        assert resolved.method == expected.method


def test_failover_trace_stitches_across_backends(fleet, client):
    """Kill the owner mid-sequence: the re-forwarded solve's trace —
    fetched from the gateway — stitches gateway and successor spans
    under one trace id, showing the failed forward, the replayed
    registration, and the successor's re-solve."""
    problem = make_problem(nf=8, no=40, seed=61)
    pid = client.register(problem)
    client.solve(pid)
    owner = fleet.owner_address(problem)

    fleet.kill(owner)
    client.solve(pid)
    trace_id = client.last_trace_id
    assert trace_id is not None

    record = client.request("GET", f"/v1/traces/{trace_id}")[1]
    assert record["stitched"] is True
    assert {s["trace_id"] for s in record["spans"]} == {trace_id}

    names = [s["name"] for s in record["spans"]]
    assert "gateway.request" in names
    # The forward to the dead owner failed inside this trace...
    failed = [
        s
        for s in record["spans"]
        if s["name"] == "http.request" and s["status"] == "error"
    ]
    assert failed, names
    assert any(owner in s["attributes"]["backend"] for s in failed)
    # ...the gateway replayed the remembered registration...
    assert "gateway.reregister" in names
    # ...and the ring successor actually re-ran the engine under the
    # same trace id (its own server.request adopted the forward's
    # context over the wire).
    assert "server.request" in names
    assert "engine.solve" in names
    # Spans came from at least two processes-worth of nodes: the
    # gateway plus the successor backend.
    assert len(record["nodes"]) >= 2
    successor = fleet.owner_address(problem)
    assert successor != owner
    assert successor in record["nodes"]


def test_no_live_owner_yields_503_with_retry_after(fleet, client):
    problem = make_problem(seed=53)
    pid = client.register(problem)
    for address in fleet.addresses:
        fleet.kill(address)
    with pytest.raises(ServerUnavailableError) as excinfo:
        client.request("POST", f"/v1/problems/{pid}/solve", None)
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after > 0
    metrics = client.metrics()
    assert metrics["gateway"]["no_owner_total"] >= 1
    assert metrics["gateway"]["backends_alive"] == 0
    assert client.health()["status"] == "down"


def test_job_poll_on_dead_backend_is_503_until_it_recovers(fleet, client):
    problem = make_problem(seed=61)
    pid = client.register(problem)
    jid = client.submit(pid)
    client.result(jid)  # completed on its owner
    owner = fleet.owner_address(problem)

    fleet.kill(owner)
    fleet.wait_alive(owner, alive=False)
    with pytest.raises(ServerUnavailableError):
        client.job(jid)

    # Restarting on the same port rejoins the same ring position; the
    # job record itself died with the old process, so the poll now
    # relays the backend's honest 404 instead of a transport error.
    fleet.restart(owner)
    fleet.wait_alive(owner, alive=True)
    with pytest.raises(ServerError) as excinfo:
        client.job(jid)
    assert excinfo.value.status == 404


def test_recovered_backend_rejoins_with_ownership_intact(fleet, client):
    problem = make_problem(seed=67)
    pid = client.register(problem)
    owner = fleet.owner_address(problem)
    baseline = client.solve(pid)

    fleet.kill(owner)
    fleet.wait_alive(owner, alive=False)
    via_successor = client.solve(pid)
    successor = fleet.owner_address(problem)
    assert successor != owner

    fleet.restart(owner)
    fleet.wait_alive(owner, alive=True)
    # Ring positions were never dropped, so ownership reverts exactly.
    assert fleet.owner_address(problem) == owner
    recovered = client.solve(pid)
    assert recovered.to_dict()["pairs"] == baseline.to_dict()["pairs"]
    assert via_successor.to_dict()["pairs"] == baseline.to_dict()["pairs"]
    metrics = client.metrics()
    assert metrics["backends"][owner]["recoveries"] >= 1
    assert client.health()["status"] == "ok"


def test_inline_solve_and_submit_without_prior_registration(fleet, client):
    """POST /v1/solve and /v1/jobs with an inline problem payload work
    through the gateway (it registers-and-routes as a side effect),
    matching the single-server inline contract."""
    problem = make_problem(seed=71)
    status, body = client.request(
        "POST", "/v1/solve", {"problem": problem.to_dict()}
    )
    assert status == 200
    assert body["backend"] == fleet.owner_address(problem)
    with AssignmentSession(problem) as session:
        direct = session.solve()
    assert body["solution"]["pairs"] == direct.to_dict()["pairs"]

    status, submitted = client.request(
        "POST", "/v1/jobs", {"problem": problem.to_dict(), "method": "chain"}
    )
    assert status == 202
    assert "@" in submitted["job_id"]
    assert client.result(submitted["job_id"]).to_dict()["pairs"] == (
        direct.to_dict()["pairs"]
    )


def test_gateway_metrics_aggregate_fleet_counters(fleet, client):
    problems = [make_problem(seed=seed) for seed in range(4)]
    for problem in problems:
        client.solve(client.register(problem))
        client.solve(problems[0].digest())  # repeat: backend cache hit

    metrics = client.metrics()
    fleet_section = metrics["fleet"]
    assert fleet_section["solves"]["total"] >= 8
    assert fleet_section["solves"]["cache_hits"] >= 3
    assert fleet_section["backends_reporting"] == 3
    assert fleet_section["unreachable"] == []
    # Summed backend counters equal the per-backend sum, by direct
    # comparison against each backend's own /metrics.
    direct_total = 0
    for address in fleet.addresses:
        with Client(f"http://{address}") as direct:
            direct_total += direct.metrics()["solves"]["total"]
    assert fleet_section["solves"]["total"] == direct_total

    gateway_section = metrics["gateway"]
    assert gateway_section["forwards_total"] >= 8
    assert gateway_section["probe_cycles"] >= 1
    assert metrics["http"]["requests_total"] >= 8
    latency = metrics["forward_latency"]
    assert sum(h["count"] for h in latency.values()) >= 8


def test_gateway_rejects_bad_requests_like_a_server(fleet, client):
    with pytest.raises(ServerError) as excinfo:
        client.request("POST", "/v1/solve", {"problem_id": 42})
    assert excinfo.value.status == 400
    with pytest.raises(ServerError) as excinfo:
        client.request("POST", "/v1/solve", {})
    assert excinfo.value.status == 400
    with pytest.raises(ServerError) as excinfo:
        client.request("GET", "/v1/problems/unknown")
    assert excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        client.request("GET", "/v1/diff?a=onlyone")
    assert excinfo.value.status == 400


def test_gateway_serves_concurrent_clients(fleet):
    """Eight threads hammer the gateway with a mix of catalogues; all
    solutions verify and match their local-session references."""
    problems = [make_problem(seed=seed) for seed in range(4)]
    references = []
    for problem in problems:
        with AssignmentSession(problem) as session:
            references.append(session.solve().to_dict()["pairs"])

    def solve_one(i):
        problem = problems[i % len(problems)]
        with Client(fleet.gateway.base_url) as c:
            return i % len(problems), c.solve(problem).to_dict()["pairs"]

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        for index, pairs in pool.map(solve_one, range(16)):
            assert pairs == references[index]


def test_gateway_config_validation():
    from repro.cluster import ReproGateway

    # Fleet validation fires at gateway construction:
    with pytest.raises(ValueError):
        ReproGateway(GatewayConfig(backends=()))
    with pytest.raises(ValueError):
        ReproGateway(
            GatewayConfig(backends=("127.0.0.1:1", "127.0.0.1:1"))
        )
    # URL-ish backend spellings normalize to host:port.
    assert GatewayConfig.normalize_address("http://127.0.0.1:8001/") == (
        "127.0.0.1:8001"
    )


def test_gateway_boots_with_backends_already_down():
    """Backends dead at startup are marked down by the initial probe
    sweep, and the fleet serves from whatever is alive."""
    live = serve_in_thread(ServerConfig(port=0))
    dead_address = "127.0.0.1:1"  # nothing listens on port 1
    try:
        with running_gateway(
            gateway_config([f"127.0.0.1:{live.port}", dead_address])
        ) as gw:
            with Client(gw.base_url) as client:
                health = client.health()
                assert health["status"] == "degraded"
                assert health["backends"][dead_address]["alive"] is False
                problem = make_problem(seed=79)
                solution = client.solve(problem)
                solution.verify()
    finally:
        live.close()
