"""The ``repro.core.solve`` dispatcher: error surface, kwargs
forwarding, and a stable-matching check for every registered solver."""

import pytest

from repro import build_object_index, solve
from repro.core import SOLVERS, assert_stable
from repro.core.reference import gale_shapley_assign, greedy_assign

from .conftest import random_instance


def test_unknown_method_error_message_lists_solvers():
    fs, os_ = random_instance(3, 5, 2, seed=0)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(ValueError) as exc:
        solve(fs, idx, method="no-such-solver")
    msg = str(exc.value)
    assert "no-such-solver" in msg
    for name in SOLVERS:
        assert name in msg


def test_kwargs_forwarded_to_solver():
    """Keyword arguments reach the underlying solver: paged function
    lists switch on list-I/O accounting, and the single-pair commit
    needs more rounds than the multi-pair default."""
    fs, os_ = random_instance(20, 12, 3, seed=4)
    idx = build_object_index(os_, memory=True)
    paged = solve(fs, idx, method="sb", paged_function_lists=128)
    assert "function_list_reads" in paged.stats.counters

    idx2 = build_object_index(os_, page_size=512)
    multi = solve(fs, idx2, method="sb")
    idx3 = build_object_index(os_, page_size=512)
    single = solve(fs, idx3, method="sb", multi_pair=False)
    assert single.matching.as_dict() == multi.matching.as_dict()
    assert single.stats.loops >= multi.stats.loops


def test_unknown_kwarg_raises():
    fs, os_ = random_instance(3, 5, 2, seed=1)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(TypeError):
        solve(fs, idx, method="sb", not_a_real_option=1)


@pytest.mark.parametrize("method", sorted(SOLVERS))
def test_every_solver_entry_matches_oracles(method):
    """Each SOLVERS entry produces the canonical stable matching on a
    tiny instance — pinned against both pre-refactor oracles."""
    fs, os_ = random_instance(6, 14, 3, seed=27, capacities=True)
    ref = greedy_assign(fs, os_).matching
    assert gale_shapley_assign(fs, os_).matching.as_dict() == ref.as_dict()
    idx = build_object_index(os_, page_size=512, memory=(method == "sb-alt"))
    got = solve(fs, idx, method=method).matching
    assert got.as_dict() == ref.as_dict(), method
    assert_stable(got, fs, os_)
