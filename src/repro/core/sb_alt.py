"""SB-alt — batch best-pair search for disk-resident functions (Sec 7.6).

When ``F`` does not fit in memory, the sorted coefficient lists are
materialized on disk and per-object TA searches (each randomly probing
the lists) would thrash.  SB-alt instead runs *one* batch TA per
skyline version: lists are read round-robin one block at a time, each
newly seen function is random-accessed once and scored against *all*
not-yet-finished skyline objects, and objects retire individually as
their incumbents beat their thresholds.  Each function coefficient is
hence accessed at most once per skyline version — the huge I/O saving
of Figure 17.  Search resumption is *not* applied ("the best functions
are identified from scratch for each version of the skyline").

The object set is assumed memory-resident in this setting (build the
index with ``memory=True``); the reported I/O is the function-list
page traffic.

Since the engine refactor the batch sweep lives in
:class:`repro.engine.search.BatchTASearch`; this module is the thin
``sb-alt`` strategy configuration.
"""

from __future__ import annotations

from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet
from repro.engine.configs import sb_alt_config
from repro.engine.engine import AssignmentEngine


def sb_alt_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    page_size: int = 4096,
    multi_pair: bool = True,
) -> AssignmentResult:
    """Skyline-based assignment with batch best-pair search over
    disk-resident coefficient lists."""
    config = sb_alt_config(page_size=page_size, multi_pair=multi_pair)
    return AssignmentEngine(config).run(functions, index)
