"""Service-level observability: latency histograms and counters.

Everything here is updated from the event-loop thread only (handlers
and job pumps), so plain attributes suffice; ``snapshot()`` renders
the ``/metrics`` JSON document.  Latency is recorded per solver method
into fixed-bucket histograms (Prometheus-style cumulative ``le``
buckets) from which p50/p99 are interpolated — good enough to spot a
saturated queue or a regressed hot path without a metrics dependency.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import Counter

#: Upper bucket bounds in seconds; chosen to straddle the engine's
#: measured range (sub-millisecond cache hits up to multi-second
#: paper-scale runs).
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    float("inf"),
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile interpolation."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        if not buckets or buckets[-1] != float("inf"):
            raise ValueError("buckets must end with +inf")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        # Buckets are sorted upper bounds, so "first bound with
        # seconds <= bound" is a binary search — this runs on every
        # request, and a linear scan of the bucket list was the one
        # O(buckets) step on that path.  The final +inf bound
        # guarantees the index is always valid.
        self.counts[bisect_left(self.buckets, seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: linear interpolation inside the bucket
        holding the rank (the final +inf bucket reports its lower
        bound — an honest 'at least this much')."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0.0
        lower = 0.0
        for bound, n in zip(self.buckets, self.counts):
            if n and seen + n >= rank:
                if bound == float("inf"):
                    return lower
                fraction = (rank - seen) / n
                return lower + (bound - lower) * fraction
            seen += n
            lower = bound
        return lower

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum_seconds": self.sum_seconds,
            "max_seconds": self.max_seconds,
            "p50_seconds": self.quantile(0.50),
            "p99_seconds": self.quantile(0.99),
            "buckets": {
                ("+inf" if bound == float("inf") else repr(bound)): n
                for bound, n in zip(self.buckets, self.counts)
            },
        }


class ServerMetrics:
    """All counters the server exports, plus the snapshot renderer."""

    def __init__(self) -> None:
        self.started = time.time()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        self.rejected_total = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.solves_total = 0
        self.solve_cache_hits = 0
        # Planner observability: how often method="auto" resolved to
        # each config, and how honest its latency estimates are.
        self.planner_picks: Counter[str] = Counter()
        self.planner_estimate_samples = 0
        self.planner_abs_error_seconds = 0.0
        self.planner_abs_relative_error = 0.0
        self.latency: dict[str, LatencyHistogram] = {}
        # Aggregate engine-run cost, accumulated from each fresh
        # (non-cached) solve's RunStats.
        self.engine_physical_reads = 0
        self.engine_logical_reads = 0
        self.engine_physical_writes = 0
        self.engine_cpu_seconds = 0.0

    def record_response(self, status: int) -> None:
        self.requests_total += 1
        self.responses_by_status[status] += 1

    def record_solve(
        self, method: str, seconds: float, solution, cached: bool, plan=None
    ) -> None:
        """Record one served solve.

        ``plan`` is the planner decision *of this request* — passed
        only when the request asked for ``method="auto"`` (a cached
        solution may carry the plan of the auto solve that populated
        it, which must not count picks for explicit requests replaying
        the entry).
        """
        self.solves_total += 1
        if cached:
            self.solve_cache_hits += 1
        histogram = self.latency.get(method)
        if histogram is None:
            histogram = self.latency[method] = LatencyHistogram()
        histogram.observe(seconds)
        stats = getattr(solution, "stats", None)
        if plan is not None and plan.auto:
            # One pick per served auto-solve: the decision applies to
            # this request whether the engine ran or the cache answered.
            self.planner_picks[plan.method] += 1
            if not cached and plan.estimated_seconds is not None:
                # Compare against what the model was calibrated on —
                # engine solve time, not the queue-inclusive service
                # latency (under a saturated worker pool the elapsed
                # time is mostly waiting, which would read as model
                # drift when the estimate is fine).
                actual = seconds
                if stats is not None and stats.cpu_seconds > 0:
                    actual = stats.cpu_seconds
                if actual > 0:
                    error = abs(plan.estimated_seconds - actual)
                    self.planner_estimate_samples += 1
                    self.planner_abs_error_seconds += error
                    self.planner_abs_relative_error += error / actual
        if not cached and stats is not None:
            self.engine_physical_reads += stats.io.physical_reads
            self.engine_logical_reads += stats.io.logical_reads
            self.engine_physical_writes += stats.io.physical_writes
            self.engine_cpu_seconds += stats.cpu_seconds

    def snapshot(
        self,
        queue: dict,
        solution_cache: dict,
        index_cache: dict,
        churn: dict | None = None,
    ) -> dict:
        """Render the ``/metrics`` document.

        ``churn`` is the session's cumulative churn-counter dict (see
        :meth:`repro.api.session.AssignmentSession.churn_info`), or
        ``None`` when the server has no live session yet.
        """
        return {
            "uptime_seconds": time.time() - self.started,
            "http": {
                "requests_total": self.requests_total,
                "responses_by_status": {
                    str(status): n
                    for status, n in sorted(self.responses_by_status.items())
                },
            },
            "queue": {
                **queue,
                "rejected_total": self.rejected_total,
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
            },
            "solution_cache": solution_cache,
            "index_cache": index_cache,
            "solves": {
                "total": self.solves_total,
                "cache_hits": self.solve_cache_hits,
            },
            "planner": {
                "picks": {
                    method: n for method, n in sorted(self.planner_picks.items())
                },
                "auto_solves": sum(self.planner_picks.values()),
                "estimate": {
                    "samples": self.planner_estimate_samples,
                    "mean_abs_error_seconds": (
                        self.planner_abs_error_seconds
                        / self.planner_estimate_samples
                        if self.planner_estimate_samples
                        else 0.0
                    ),
                    "mean_abs_relative_error": (
                        self.planner_abs_relative_error
                        / self.planner_estimate_samples
                        if self.planner_estimate_samples
                        else 0.0
                    ),
                },
            },
            "latency": {
                method: hist.to_dict() for method, hist in self.latency.items()
            },
            "engine": {
                "physical_reads": self.engine_physical_reads,
                "logical_reads": self.engine_logical_reads,
                "physical_writes": self.engine_physical_writes,
                "cpu_seconds": self.engine_cpu_seconds,
            },
            "churn": dict(churn) if churn else {},
        }


__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "ServerMetrics"]
