"""Exclusive Dominance Region (EDR) decomposition.

The EDR of a skyline point ``p`` is the part of the space dominated by
``p`` but by no other skyline point (paper Section 2.2, Figure 3).
When a skyline point is deleted, only objects inside its EDR can enter
the skyline.  Beyond D=2 the EDR is a union of hyper-rectangles whose
count grows like |skyline|^D — which is exactly why the paper's
UpdateSkyline and DeltaSky both avoid materializing it.

This module *does* materialize it (by iterated box subtraction), as a
verification oracle: tests assert that the candidate entries processed
by UpdateSkyline after a removal all intersect the removed point's
EDR, and that points outside it never enter the repaired skyline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.rtree.geometry import Rect


def dominance_region(p: Sequence[float], origin: float = 0.0) -> Rect:
    """The region dominated by ``p`` (larger-is-better): ``[origin, p]``."""
    return Rect(tuple(origin for _ in p), tuple(p))


def subtract_box(box: Rect, cut: Rect) -> list[Rect]:
    """``box`` minus ``cut`` as disjoint boxes (closed-boundary
    semantics; shared faces of zero measure may remain)."""
    if not box.intersects(cut):
        return [box]
    out: list[Rect] = []
    lo = list(box.lo)
    hi = list(box.hi)
    # Peel off the slabs of `box` lying outside `cut`, one dim at a time.
    for i in range(box.dims):
        if lo[i] < cut.lo[i]:
            piece_hi = hi.copy()
            piece_hi[i] = cut.lo[i]
            out.append(Rect(tuple(lo), tuple(piece_hi)))
            lo[i] = cut.lo[i]
        if hi[i] > cut.hi[i]:
            piece_lo = lo.copy()
            piece_lo[i] = cut.hi[i]
            out.append(Rect(tuple(piece_lo), tuple(hi)))
            hi[i] = cut.hi[i]
    return [r for r in out if r.area() > 0.0]


def exclusive_dominance_region(
    p: Sequence[float], others: Iterable[Sequence[float]], origin: float = 0.0
) -> list[Rect]:
    """EDR of ``p`` w.r.t. the other skyline points, as disjoint boxes."""
    boxes = [dominance_region(p, origin)]
    for s in others:
        cut = dominance_region(s, origin)
        boxes = [piece for box in boxes for piece in subtract_box(box, cut)]
        if not boxes:
            break
    return boxes


def point_in_edr(q: Sequence[float], boxes: Sequence[Rect]) -> bool:
    """Membership test against a box decomposition (closed boxes)."""
    return any(b.contains_point(q) for b in boxes)


def point_in_edr_exact(
    q: Sequence[float], p: Sequence[float], others: Iterable[Sequence[float]]
) -> bool:
    """Direct EDR membership (no decomposition): dominated by ``p`` or
    equal to it in the closed sense, and dominated by no other point.

    Used to cross-check the box decomposition on sampled points.
    """
    from repro.rtree.geometry import dominates_on_or_equal

    if not dominates_on_or_equal(p, q):
        return False
    return not any(dominates_on_or_equal(s, q) for s in others)
