"""Simulated secondary-storage substrate.

The paper evaluates all algorithms on an R-tree stored in 4 KB disk
pages behind an LRU buffer, and reports *page accesses* as the I/O
metric.  This package provides that substrate:

- :class:`~repro.storage.stats.IOStats` — physical-read / buffer-hit
  counters shared by everything that touches a page.
- :class:`~repro.storage.pagefile.PageFile` — a page-granular
  simulated disk (bytes in, bytes out).
- :class:`~repro.storage.buffer.LRUBufferPool` — an LRU buffer in
  front of a :class:`PageFile`, sized as a fraction of the file like
  the paper's "buffer size = 2% of the tree size" setting.
- :class:`~repro.storage.stats.MemoryTracker` — peak-memory
  accounting for the search structures (priority queues, plists, TA
  states) the paper charges to each algorithm.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.pagefile import PageFile
from repro.storage.stats import IOStats, MemoryTracker

__all__ = ["IOStats", "LRUBufferPool", "MemoryTracker", "PageFile"]
