"""Shared fixtures for the per-figure benchmark suites.

Scale is controlled by ``REPRO_BENCH_SCALE`` (small | medium | paper);
see :mod:`repro.bench.config`.  The measurement helper lives in
:mod:`repro.bench.pytest_support`.
"""

from __future__ import annotations

import pytest

from repro.bench.config import current_scale, defaults


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    d = defaults()
    print(
        f"\n[repro benchmarks] scale={current_scale()} "
        f"|F|={d.nf} |O|={d.no} D={d.dims} {d.distribution} "
        f"buffer={d.buffer_fraction:.0%}"
    )
    yield
