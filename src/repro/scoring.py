"""The one true scoring function.

Every algorithm in this repository computes ``f(o)`` through
:func:`score` so that floating-point results are bit-identical across
the seven solver implementations — the cross-validation tests compare
matchings exactly, which requires a single summation order.

``score`` implements the paper's Equation 1 (and Equation 2 when the
weights passed in are the γ-scaled *effective* weights of
:meth:`repro.data.instances.FunctionSet.effective_weights`).
"""

from __future__ import annotations

from collections.abc import Sequence


#: Safety margin for comparing a score against an *upper bound that was
#: computed with a different summation order* (the fractional-knapsack
#: threshold ranks dimensions by the object's values, so its rounding
#: differs from :func:`score`'s left-to-right order by a few ULPs).
#: Terminating a search only when the incumbent exceeds the bound by
#: more than this margin is conservative: it can only cause extra
#: scanning, never a wrong result.  Comparisons between two values both
#: produced by :func:`score` (or by the same left-to-right dot product)
#: are monotone in floating point and need no margin.
SCORE_EPS = 1e-9


def score(weights: Sequence[float], point: Sequence[float]) -> float:
    """``sum_i weights[i] * point[i]`` in left-to-right order."""
    total = 0.0
    for w, x in zip(weights, point):
        total += w * x
    return total
