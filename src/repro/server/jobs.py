"""Job lifecycle: admission control, the bounded queue, job records.

Admission is a single counter over *live* solves — queued plus
running, synchronous and asynchronous alike — against a configured
limit.  A request that would push the counter past the limit is turned
away at the door with HTTP 429 + ``Retry-After`` instead of being
buffered without bound: under sustained overload the server sheds load
early and keeps latency for admitted work flat, which is the whole
point of backpressure.

Finished jobs are kept for polling, bounded by ``history_limit``:
oldest *finished* records are dropped first, live ones never.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.api.problem import Problem
from repro.api.solution import Solution
from repro.obs.log import get_logger

log = get_logger("repro.server")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class AdmissionController:
    """Bounded live-work counter with a saturation high-water mark."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("admission limit must be >= 1")
        self.limit = limit
        self._guard = threading.Lock()
        self.depth = 0
        self.peak_depth = 0
        self.underflows = 0

    def try_acquire(self) -> bool:
        with self._guard:
            if self.depth >= self.limit:
                return False
            self.depth += 1
            self.peak_depth = max(self.peak_depth, self.depth)
            return True

    def release(self) -> None:
        # An unmatched release is an accounting bug, but it surfaces
        # inside handlers' ``finally`` blocks — raising here would mask
        # the original exception with a secondary RuntimeError.  Clamp,
        # count, and log instead; ``underflows`` in :meth:`info` keeps
        # the bug observable via ``/metrics``.
        with self._guard:
            if self.depth <= 0:
                self.underflows += 1
                log.warning(
                    "AdmissionController.release() without a matching "
                    "acquire (clamped at 0)",
                    underflows=self.underflows,
                )
                return
            self.depth -= 1

    def info(self) -> dict[str, int]:
        with self._guard:
            return {
                "depth": self.depth,
                "peak_depth": self.peak_depth,
                "limit": self.limit,
                "underflows": self.underflows,
            }


@dataclass
class Job:
    """One asynchronous solve from submission to completion.

    The finish transition is atomic: :meth:`complete` / :meth:`fail`
    assign every result field *before* flipping ``status``, under the
    record's lock — and :meth:`to_dict` snapshots under the same lock —
    so a concurrent poll (from the event loop or any other thread) can
    never observe ``status == "done"`` with ``solution`` still null.
    """

    job_id: str
    problem_id: str
    problem: Problem = field(repr=False)
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    wall_seconds: float | None = None
    cache_hit: bool | None = None
    solution: Solution | None = field(default=None, repr=False)
    error: str | None = None
    _guard: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @property
    def finished(self) -> bool:
        # status flips DONE/FAILED under the guard in mark_done/
        # mark_failed; an unguarded read here could see the flip before
        # the same transaction's result fields land.
        with self._guard:
            return self.status in (DONE, FAILED)

    def mark_running(self) -> None:
        with self._guard:
            self.status = RUNNING
            self.started_at = time.time()

    def complete(
        self, solution: Solution, cache_hit: bool, wall_seconds: float
    ) -> None:
        """Publish the finished record: results first, ``status`` last."""
        with self._guard:
            self.solution = solution
            self.cache_hit = cache_hit
            self.wall_seconds = wall_seconds
            self.finished_at = time.time()
            self.status = DONE

    def fail(self, error: str) -> None:
        with self._guard:
            self.error = error
            self.finished_at = time.time()
            self.status = FAILED

    def to_dict(self, include_solution: bool = True) -> dict:
        with self._guard:
            payload = {
                "job_id": self.job_id,
                "problem_id": self.problem_id,
                "method": self.problem.method,
                # The planner's pick for method="auto" (== method for
                # explicit picks; memoized on the immutable Problem).
                "resolved_method": self.problem.resolved_method,
                "options": dict(self.problem.options),
                "status": self.status,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "wall_seconds": self.wall_seconds,
                "cache_hit": self.cache_hit,
                "error": self.error,
            }
            solution = self.solution
        if include_solution:
            payload["solution"] = (
                solution.to_dict() if solution is not None else None
            )
        return payload


class JobStore:
    """Sequentially-numbered job records with bounded finished history."""

    def __init__(self, history_limit: int = 1024):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count(1)

    def create(self, problem_id: str, problem: Problem) -> Job:
        job = Job(
            job_id=f"job-{next(self._seq):08d}",
            problem_id=problem_id,
            problem=problem,
        )
        self._jobs[job.job_id] = job
        self._trim()
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def inflight(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        return sum(1 for job in self._jobs.values() if not job.finished)

    def __len__(self) -> int:
        return len(self._jobs)

    def _trim(self) -> None:
        if len(self._jobs) <= self.history_limit:
            return
        # dicts iterate in insertion order == submission order; drop
        # the oldest *finished* jobs only — a live job must stay
        # pollable no matter how fast history churns.
        excess = len(self._jobs) - self.history_limit
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]
        for job_id in stale:
            del self._jobs[job_id]


__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "AdmissionController",
    "Job",
    "JobStore",
]
