"""R-tree tests: encoding round-trips, bulk load, insert/delete, search."""


import pytest
from hypothesis import given, settings

from repro.rtree.encoding import NodeCodec, internal_capacity, leaf_capacity
from repro.rtree.geometry import Rect
from repro.rtree.node import Node
from repro.rtree.store import DiskNodeStore, MemoryNodeStore
from repro.rtree.tree import RTree

from .conftest import points_strategy


class TestEncoding:
    def test_paper_fanouts_at_4k(self):
        # 4 KB pages at D=4: ~102 points per leaf, ~56 children per node.
        assert leaf_capacity(4096, 4) == 102
        assert internal_capacity(4096, 4) == 56

    def test_capacity_grows_with_page_and_shrinks_with_dims(self):
        assert leaf_capacity(8192, 4) > leaf_capacity(4096, 4)
        assert leaf_capacity(4096, 6) < leaf_capacity(4096, 4)

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            leaf_capacity(16, 4)

    def test_leaf_roundtrip(self):
        codec = NodeCodec(3, 4096)
        node = Node(7, True, [(1, (0.1, 0.2, 0.3)), (2, (0.4, 0.5, 0.6))])
        back = codec.decode(7, codec.encode(node))
        assert back.is_leaf
        assert back.entries == node.entries

    def test_internal_roundtrip(self):
        codec = NodeCodec(2, 4096)
        node = Node(
            3,
            False,
            [(10, Rect((0.0, 0.0), (0.5, 0.5))), (11, Rect((0.5, 0.0), (1.0, 1.0)))],
        )
        back = codec.decode(3, codec.encode(node))
        assert not back.is_leaf
        assert back.entries == node.entries

    def test_overflowing_node_rejected(self):
        codec = NodeCodec(2, 128)
        node = Node(0, True, [(i, (0.0, 0.0)) for i in range(100)])
        with pytest.raises(ValueError):
            codec.encode(node)

    @given(points_strategy(4, min_size=1, max_size=50))
    @settings(max_examples=25)
    def test_roundtrip_property(self, pts):
        codec = NodeCodec(4, 4096)
        entries = list(enumerate(pts))[: codec.leaf_capacity]
        node = Node(0, True, entries)
        assert codec.decode(0, codec.encode(node)).entries == entries


def brute_range(items, rect):
    return sorted((i, p) for i, p in items if rect.contains_point(p))


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 5, 250, 3000])
    def test_invariants_and_contents(self, n, rng):
        D = 3
        items = [(i, tuple(rng.random() for _ in range(D))) for i in range(n)]
        store = DiskNodeStore(D, page_size=512, buffer_capacity=10**6)
        tree = RTree.bulk_load(store, D, items)
        tree.check_invariants()
        assert sorted(tree.iter_items()) == sorted(items)

    def test_range_search_matches_brute_force(self, rng):
        D = 2
        items = [(i, (rng.random(), rng.random())) for i in range(800)]
        store = DiskNodeStore(D, page_size=256, buffer_capacity=10**6)
        tree = RTree.bulk_load(store, D, items)
        for _ in range(10):
            lo = (rng.random() * 0.6, rng.random() * 0.6)
            hi = (lo[0] + 0.3, lo[1] + 0.3)
            rect = Rect(lo, hi)
            assert sorted(tree.range_search(rect)) == brute_range(items, rect)

    def test_height_grows(self, rng):
        D = 2
        small = RTree.bulk_load(
            MemoryNodeStore(D, 256), D, [(i, (rng.random(),) * 2) for i in range(5)]
        )
        big = RTree.bulk_load(
            MemoryNodeStore(D, 256), D,
            [(i, (rng.random(), rng.random())) for i in range(2000)],
        )
        assert small.height == 1
        assert big.height >= 3


class TestInsertDelete:
    def test_incremental_build_invariants(self, rng):
        D = 2
        tree = RTree(MemoryNodeStore(D, 256), D)
        items = [(i, (rng.random(), rng.random())) for i in range(600)]
        for i, p in items:
            tree.insert(i, p)
        tree.check_invariants()
        assert sorted(tree.iter_items()) == sorted(items)

    def test_delete_missing_returns_false(self, rng):
        D = 2
        tree = RTree(MemoryNodeStore(D, 256), D)
        tree.insert(1, (0.5, 0.5))
        assert not tree.delete(2, (0.5, 0.5))
        assert not tree.delete(1, (0.4, 0.4))
        assert tree.delete(1, (0.5, 0.5))
        assert tree.size == 0

    def test_delete_to_empty_and_reuse(self, rng):
        D = 2
        tree = RTree(MemoryNodeStore(D, 256), D)
        items = [(i, (rng.random(), rng.random())) for i in range(50)]
        for i, p in items:
            tree.insert(i, p)
        for i, p in items:
            assert tree.delete(i, p)
        assert tree.root_id is None and tree.height == 0
        tree.insert(99, (0.1, 0.2))
        assert list(tree.iter_items()) == [(99, (0.1, 0.2))]

    def test_mixed_workload_invariants(self, rng):
        D = 3
        tree = RTree(MemoryNodeStore(D, 512), D)
        alive = {}
        next_id = 0
        for step in range(1500):
            if alive and rng.random() < 0.4:
                oid = rng.choice(list(alive))
                assert tree.delete(oid, alive.pop(oid))
            else:
                p = tuple(rng.random() for _ in range(D))
                tree.insert(next_id, p)
                alive[next_id] = p
                next_id += 1
            if step % 300 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted(tree.iter_items()) == sorted(alive.items())

    def test_duplicate_points_coexist(self):
        D = 2
        tree = RTree(MemoryNodeStore(D, 256), D)
        for i in range(10):
            tree.insert(i, (0.5, 0.5))
        assert tree.size == 10
        assert tree.delete(3, (0.5, 0.5))
        assert sorted(i for i, _ in tree.iter_items()) == [
            0, 1, 2, 4, 5, 6, 7, 8, 9,
        ]

    def test_insert_wrong_dims_rejected(self):
        tree = RTree(MemoryNodeStore(2, 256), 2)
        with pytest.raises(ValueError):
            tree.insert(0, (0.1, 0.2, 0.3))

    @given(points_strategy(2, min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_property_insert_then_delete_half(self, pts):
        tree = RTree(MemoryNodeStore(2, 256), 2)
        items = list(enumerate(pts))
        for i, p in items:
            tree.insert(i, p)
        tree.check_invariants()
        keep = items[len(items) // 2 :]
        for i, p in items[: len(items) // 2]:
            assert tree.delete(i, p)
        tree.check_invariants()
        assert sorted(tree.iter_items()) == sorted(keep)


class TestDiskStoreAccounting:
    def test_reads_go_through_buffer(self, rng):
        D = 2
        store = DiskNodeStore(D, page_size=256, buffer_capacity=0)
        tree = RTree.bulk_load(
            store, D, [(i, (rng.random(), rng.random())) for i in range(500)]
        )
        store.stats.reset()
        list(tree.iter_items())
        assert store.stats.physical_reads == store.num_pages
        # A second scan re-reads everything with no buffer.
        list(tree.iter_items())
        assert store.stats.physical_reads == 2 * store.num_pages

    def test_buffer_absorbs_rereads(self, rng):
        D = 2
        store = DiskNodeStore(D, page_size=256, buffer_capacity=10**6)
        tree = RTree.bulk_load(
            store, D, [(i, (rng.random(), rng.random())) for i in range(500)]
        )
        store.buffer.clear()
        store.stats.reset()
        list(tree.iter_items())
        list(tree.iter_items())
        assert store.stats.physical_reads == store.num_pages
        assert store.stats.buffer_hits == store.num_pages

    def test_set_buffer_fraction(self, rng):
        D = 2
        store = DiskNodeStore(D, page_size=256, buffer_capacity=0)
        RTree.bulk_load(
            store, D, [(i, (rng.random(), rng.random())) for i in range(500)]
        )
        store.set_buffer_fraction(0.1)
        assert store.buffer.capacity == int(store.num_pages * 0.1)
