"""Figure 9 — effect of dimensionality D, all three data types.

D in {3, 4, 5, 6} x {independent, correlated, anti-correlated} for
SB, Brute Force and Chain; the paper reports I/O (a-c), CPU (d-f) and
memory (g-i).  Expected shapes: SB 2-3 orders of magnitude fewer
I/Os; Brute Force < Chain in I/O; Chain slowest in CPU; Brute Force
by far the most memory; all costs grow with D (dimensionality curse).
"""

import pytest

from repro.bench.config import DIMS_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]
DISTRIBUTIONS = ["independent", "correlated", "anti-correlated"]


@pytest.mark.benchmark(group="fig09-dimensionality")
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("dims", DIMS_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig09(benchmark, method, dims, distribution):
    functions, objects = make_instance(D.nf, D.no, dims, distribution, seed=9)
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
