"""Serving quickstart: the Figure 1 instance over HTTP.

Boots an embedded repro-server on an ephemeral port (the same server
``python -m repro.server`` runs standalone), registers a problem,
solves it synchronously and as an async job, and prints the serving
metrics.  Run with::

    PYTHONPATH=src python examples/server_quickstart.py
"""

from repro.api import Problem
from repro.server import Client, ServerConfig, running_server


def main() -> None:
    problem = (
        Problem.builder()
        .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
        .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        .solver("sb")
        .build()
    )

    with running_server(ServerConfig(port=0)) as handle:
        print(f"serving on {handle.base_url}")
        with Client(handle.base_url) as client:
            problem_id = client.register(problem)
            print(f"registered problem {problem_id[:16]}…")

            # Synchronous solve; the solution verifies client-side.
            solution = client.solve(problem_id).verify()
            for pair in solution:
                print(f"  user {pair.fid} -> object {pair.oid} ({pair.score:.2f})")

            # Async job: submit, then poll to completion.  A second
            # method over the same catalogue reuses the cached R-tree.
            job_id = client.submit(problem_id, method="chain")
            chain_solution = client.result(job_id)
            assert chain_solution.as_dict() == solution.as_dict()
            print(f"job {job_id} (chain) matches the sb solution")

            metrics = client.metrics()
            print(
                "index cache:", metrics["index_cache"],
                "| solution cache hits:", metrics["solution_cache"]["hits"],
            )
    print("done")


if __name__ == "__main__":
    main()
