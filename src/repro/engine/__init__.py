"""The unified assignment engine.

One round loop — emit mutually-best pairs, commit under capacities
and priorities, repair the skyline — parameterized by three strategy
seams, replacing the five hand-rolled solver loops that used to live
in :mod:`repro.core`:

- :class:`~repro.engine.engine.AssignmentEngine` — runs an
  :class:`~repro.engine.engine.EngineConfig` on one instance;
- :mod:`repro.engine.protocols` — the ``SkylineMaintenance``,
  ``BestPairSearch`` and ``CommitPolicy`` strategy protocols plus the
  ``RoundStrategy`` seam;
- :mod:`repro.engine.search` — reverse-TA, batch-TA and Fsky-scan
  best-pair searches;
- :mod:`repro.engine.rounds` — the shared mutual-best round and
  Chain's top-1 chase;
- :mod:`repro.engine.configs` — every solver (and every Figure 8
  ablation variant) as a named, declarative config.
"""

from repro.engine.configs import (
    ENGINE_CONFIGS,
    chain_config,
    engine_config,
    sb_alt_config,
    sb_config,
    two_skyline_config,
)
from repro.engine.engine import AssignmentEngine, EngineConfig, EngineContext
from repro.engine.instrumentation import Instrumentation
from repro.engine.protocols import (
    BestPairSearch,
    CommitPolicy,
    RoundStrategy,
    SkylineMaintenance,
    StablePair,
)

__all__ = [
    "ENGINE_CONFIGS",
    "AssignmentEngine",
    "BestPairSearch",
    "CommitPolicy",
    "EngineConfig",
    "EngineContext",
    "Instrumentation",
    "RoundStrategy",
    "SkylineMaintenance",
    "StablePair",
    "chain_config",
    "engine_config",
    "sb_alt_config",
    "sb_config",
    "two_skyline_config",
]
