"""Blocking HTTP client for :mod:`repro.server` — stdlib only.

Speaks the server's JSON protocol over keep-alive
:class:`http.client.HTTPConnection` transports (reconnecting
transparently when the peer drops one), translates error responses
into the :class:`~repro.errors.ServerError` hierarchy, and re-hydrates
wire payloads into the same :class:`Problem` / :class:`Solution` value
objects the in-process API returns — a solution fetched over the wire
is ``==`` to one solved locally.

Thread-safe: each thread gets its own keep-alive connection (held in
``threading.local`` storage), so one ``Client`` may be shared by any
number of concurrent callers — the cluster gateway forwards every
in-flight request for a backend through one shared ``Client``.  The
problem cache that re-attaches fetched solutions is guarded by a lock.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading
import time

from repro.api.problem import Problem
from repro.api.solution import Solution
from repro.errors import ServerBusyError, ServerError, ServerUnavailableError
from repro.obs.trace import TRACE_HEADER, current_context, span

#: Statuses whose ``Retry-After`` the polite-retry loop honours.
_RETRYABLE = (ServerBusyError, ServerUnavailableError)


def _retry_after_seconds(response) -> float:
    try:
        return float(response.headers.get("Retry-After", "1"))
    except ValueError:
        return 1.0


class Client:
    """Blocking client bound to one server base URL."""

    def __init__(
        self,
        base_url: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
    ):
        if base_url is not None:
            if not base_url.startswith("http://"):
                raise ValueError(f"expected an http:// base URL, got {base_url!r}")
            authority = base_url[len("http://") :].rstrip("/")
            host, _, port_text = authority.partition(":")
            port = int(port_text) if port_text else 80
        self.host = host
        self.port = port
        self.timeout = timeout
        # One keep-alive connection per calling thread: HTTPConnection
        # is a single request/response state machine, so interleaved
        # use from two threads corrupts the stream.  Thread-local
        # storage gives every caller its own; ``_conns`` remembers
        # them all so close() can drop every socket.
        self._local = threading.local()
        self._guard = threading.Lock()
        self._conns: set[http.client.HTTPConnection] = set()
        # Problems this client has registered, for re-attaching to
        # solutions so ``.verify()`` works without another fetch.
        self._known: dict[str, Problem] = {}
        #: Trace id the server echoed on the most recent response from
        #: this thread's connection (``X-Repro-Trace``), for feeding
        #: ``repro-admin trace`` after an interesting call.
        self.last_trace_id: str | None = None

    # -- transport -----------------------------------------------------

    def _get_conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        # (Re-)track on every use: a cross-thread close() untracks the
        # connection, but HTTPConnection auto-reopens on the next
        # request — it must come back under close()'s control.
        with self._guard:
            self._conns.add(conn)
        return conn

    def _drop_conn(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._guard:
            self._conns.discard(conn)
        conn.close()

    def close(self) -> None:
        """Close every connection this client has opened, across all
        threads (safe to call while other threads are idle; a thread
        mid-request simply reconnects on its next call)."""
        with self._guard:
            conns, self._conns = self._conns, set()
        self._local.conn = None
        for conn in conns:
            conn.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, payload=None):
        """One JSON round trip: ``(status, decoded body)``.

        Raises the typed :class:`~repro.errors.ServerError` hierarchy
        for non-success statuses (429 → :class:`ServerBusyError`,
        503 → :class:`ServerUnavailableError`).  Reconnects once,
        transparently, when a keep-alive connection went stale.
        """
        with span(
            "http.request",
            method=method,
            path=path,
            backend=f"{self.host}:{self.port}",
        ):
            return self._round_trip(method, path, payload)

    def _round_trip(self, method: str, path: str, payload):
        body = None
        # ``span`` above guarantees a current context, so every request
        # carries the trace header — the server adopts it as its root
        # span's parent and the trees stitch across the wire.
        headers = {TRACE_HEADER: current_context().header()}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            conn = self._get_conn()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                BrokenPipeError,
                ConnectionResetError,
            ):
                # A keep-alive connection the server has since closed;
                # reconnect once, then let the failure surface.
                self._drop_conn()
                if attempt == 2:
                    raise
        if response.will_close:
            self._drop_conn()
        echoed = response.headers.get(TRACE_HEADER)
        trace_id = echoed.partition(":")[0] if echoed else None
        if trace_id:
            self.last_trace_id = trace_id
        trace_suffix = f" [trace {trace_id}]" if trace_id else ""
        decoded = None
        if data:
            try:
                decoded = json.loads(data)
            except ValueError as exc:
                raise ServerError(
                    f"non-JSON response body from {method} {path}: {exc}"
                    f"{trace_suffix}",
                    status=response.status,
                    trace_id=trace_id,
                ) from exc
        if response.status == 429:
            raise ServerBusyError(
                (decoded or {}).get("error", "server busy") + trace_suffix,
                retry_after=_retry_after_seconds(response),
                payload=decoded,
                trace_id=trace_id,
            )
        if response.status == 503:
            raise ServerUnavailableError(
                (decoded or {}).get("error", "service unavailable") + trace_suffix,
                retry_after=_retry_after_seconds(response),
                payload=decoded,
                trace_id=trace_id,
            )
        if response.status >= 400:
            message = (
                decoded.get("error")
                if isinstance(decoded, dict) and "error" in decoded
                else f"{method} {path} -> HTTP {response.status}"
            )
            raise ServerError(
                message + trace_suffix,
                status=response.status,
                payload=decoded,
                trace_id=trace_id,
            )
        return response.status, decoded

    # Historical private name; the protocol methods below and a few
    # tests go through it.
    _request = request

    # -- protocol ------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")[1]

    def register(self, problem: Problem) -> str:
        """Register (or re-find) a problem; returns its server id."""
        _, body = self.request("POST", "/v1/problems", problem.to_dict())
        problem_id = body["problem_id"]
        with self._guard:
            self._known[problem_id] = problem
        return problem_id

    def problem(self, problem_id: str) -> Problem:
        _, body = self.request("GET", f"/v1/problems/{problem_id}")
        problem = Problem.from_dict(body)
        with self._guard:
            self._known[problem_id] = problem
        return problem

    def _target(self, problem: Problem | str) -> str:
        if isinstance(problem, Problem):
            return self.register(problem)
        return problem

    def _attach(
        self,
        solution: Solution,
        problem_id: str,
        method: str | None = None,
        options: dict | None = None,
    ) -> Solution:
        """Re-attach the registered base :class:`Problem` so
        ``solution.verify()`` works — but only when the solve actually
        used that problem's solver selection (``method`` / ``options``
        are what the server reports it solved with; ``None`` = no
        check).  An overridden solve stays detached: attaching the
        base would misreport which options produced the result."""
        with self._guard:
            base = self._known.get(problem_id)
        if base is None:
            return solution
        if method is not None and method != base.method:
            return solution
        if options is not None and dict(options) != dict(base.options):
            return solution
        return dataclasses.replace(solution, problem=base)

    def solve(
        self,
        problem: Problem | str,
        *,
        method: str | None = None,
        options: dict | None = None,
        timeout: float = 120.0,
    ) -> Solution:
        """Synchronous solve; retries politely on 429/503 until
        ``timeout``."""
        problem_id = self._target(problem)
        overrides: dict = {}
        if method is not None:
            overrides["method"] = method
        if options is not None:
            overrides["options"] = options
        body = self._retry_busy(
            lambda: self.request(
                "POST", f"/v1/problems/{problem_id}/solve", overrides or None
            ),
            timeout,
        )
        solution = Solution.from_dict(body["solution"])
        if overrides:
            return solution  # detached: the base Problem would lie
        return self._attach(solution, problem_id)

    def submit(
        self,
        problem: Problem | str,
        *,
        method: str | None = None,
        options: dict | None = None,
        timeout: float | None = None,
    ) -> str:
        """Enqueue an async solve; returns the job id.

        With ``timeout=None`` a saturated queue raises
        :class:`~repro.errors.ServerBusyError` immediately (the caller
        owns backoff); with a timeout the client honours ``Retry-After``
        and retries until admitted or out of time.
        """
        problem_id = self._target(problem)
        payload: dict = {"problem_id": problem_id}
        if method is not None:
            payload["method"] = method
        if options is not None:
            payload["options"] = options

        def request():
            return self.request("POST", "/v1/jobs", payload)

        if timeout is None:
            _, body = request()
        else:
            body = self._retry_busy(request, timeout)
        return body["job_id"]

    def job(self, job_id: str, *, include_solution: bool = True) -> dict:
        suffix = "" if include_solution else "?solution=0"
        return self.request("GET", f"/v1/jobs/{job_id}{suffix}")[1]

    def result(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.02,
    ) -> Solution:
        """Poll a job to completion; returns its :class:`Solution`."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id, include_solution=False)
            if status["status"] == "done":
                _, payload = self.request("GET", f"/v1/jobs/{job_id}/solution")
                solution = Solution.from_dict(payload)
                return self._attach(
                    solution,
                    status["problem_id"],
                    status["method"],
                    status.get("options"),
                )
            if status["status"] == "failed":
                raise ServerError(
                    f"job {job_id} failed: {status['error']}",
                    status=409,
                    payload=status,
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def diff(self, job_a: str, job_b: str) -> dict:
        """Unit-level delta between two completed jobs' solutions."""
        return self.request("GET", f"/v1/diff?a={job_a}&b={job_b}")[1]

    # ------------------------------------------------------------------

    @staticmethod
    def _retry_busy(request, timeout: float):
        """Run ``request`` honouring 429/503 ``Retry-After`` backoff."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                _, body = request()
                return body
            except _RETRYABLE as busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(max(busy.retry_after, 0.01), remaining))


__all__ = ["Client", "ServerBusyError", "ServerError", "ServerUnavailableError"]
