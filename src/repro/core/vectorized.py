"""Vectorized canonical argmax over a set of rows.

The BestPair step scans the (in-memory) skyline for each candidate
function — "find object f.obest ∈ Osky that maximizes f(o)" — and the
two-skyline variant scans Fsky per object.  Both are dot-product
argmaxes with canonical tie-breaking.  ``MatrixView`` computes the
scores with one numpy matmul, then resolves the winner *exactly*
(via :func:`repro.scoring.score` and the canonical tuple order) among
the rows inside a small tolerance band around the numpy maximum — the
band is orders of magnitude wider than matmul's rounding error, so
the exact winner is always inside it and results are bit-identical to
the scalar scan.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ordering import neg
from repro.scoring import SCORE_EPS, score


class MatrixView:
    """Static ``(id, vector)`` rows supporting canonical best-row query.

    The canonical order used is ``(-score, neg(row), id)`` ascending —
    which equals :func:`repro.ordering.object_key` when rows are object
    points and :func:`repro.ordering.function_key` when rows are
    effective weight vectors (the two orders share one shape).
    """

    def __init__(self, ids: Sequence[int], rows: Sequence[Sequence[float]]):
        if len(ids) != len(rows):
            raise ValueError("ids and rows must align")
        self.ids = list(ids)
        self.rows = [tuple(r) for r in rows]
        self._matrix = np.asarray(self.rows, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_dict(cls, mapping: dict[int, tuple[float, ...]]) -> "MatrixView":
        ids = sorted(mapping)
        return cls(ids, [mapping[i] for i in ids])

    def best_for(self, query: Sequence[float]) -> tuple[int, float]:
        """Canonically best ``(id, exact_score)`` for ``query``."""
        if not self.ids:
            raise ValueError("best_for on an empty MatrixView")
        approx = self._matrix @ np.asarray(query, dtype=np.float64)
        band = np.nonzero(approx >= approx.max() - SCORE_EPS)[0]
        best_key = None
        best_i = -1
        for i in band:
            row = self.rows[i]
            key = (-score(row, query), neg(row), self.ids[i])
            if best_key is None or key < best_key:
                best_key = key
                best_i = int(i)
        return self.ids[best_i], -best_key[0]
