"""Prioritized assignment — the two-skyline variant (Section 6.2).

With per-function priorities γ the effective coefficients
``α'_i = γ·α_i`` no longer sum to 1, which loosens the plain TA
threshold (``B`` must be initialized to ``max γ``).  The paper's
stronger alternative: also maintain a skyline ``Fsky`` over the
effective coefficient vectors — stable pairs can only join ``Fsky``
with ``Osky`` — and search best pairs *exhaustively* between the two
skylines ("it is faster to exhaustively search ... than to keep the
functions indexed and execute TA", because Fsky is small and sees
frequent updates that would invalidate TA states).

Correctness of restricting to Fsky: if f' dominates f coefficient-wise
then ``f'(o) >= f(o)`` for every non-negative object, and the canonical
function order of :mod:`repro.ordering` breaks score ties toward the
dominator, so the canonical best function for any object is always on
the function skyline.

Since the engine refactor the Fsky scan lives in
:class:`repro.engine.search.FskySearch`; this module is the thin
``sb-two-skylines`` strategy configuration.
"""

from __future__ import annotations

from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet
from repro.engine.configs import two_skyline_config
from repro.engine.engine import AssignmentEngine


def sb_two_skyline_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    multi_pair: bool = True,
) -> AssignmentResult:
    """SB with both an object skyline and a function skyline."""
    config = two_skyline_config(multi_pair=multi_pair)
    return AssignmentEngine(config).run(functions, index)
