"""Classic TA, BRS and Onion against exhaustive oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import object_key
from repro.rtree.store import DiskNodeStore
from repro.rtree.tree import RTree
from repro.scoring import score
from repro.topk.brs import BRSSearch
from repro.topk.onion import OnionIndex
from repro.topk.ta import ta_topk

from .conftest import points_strategy, random_points, random_weights


def exhaustive_order(items, weights):
    return [
        oid
        for _, oid in sorted(
            (object_key(score(weights, p), p, oid), oid) for oid, p in items
        )
    ]


def build_tree(items, dims):
    store = DiskNodeStore(dims, page_size=256, buffer_capacity=10**6)
    return RTree.bulk_load(store, dims, items)


class TestTA:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_exhaustive(self, k, rng):
        for _ in range(10):
            items = list(enumerate(random_points(50, 3, rng)))
            w = tuple(random_weights(1, 3, rng)[0])
            got = [oid for oid, _ in ta_topk(items, w, k)]
            assert got == exhaustive_order(items, w)[: min(k, len(items))]

    def test_k_larger_than_n(self, rng):
        items = list(enumerate(random_points(5, 2, rng)))
        w = (0.5, 0.5)
        assert len(ta_topk(items, w, 100)) == 5

    def test_empty_input(self):
        assert ta_topk([], (1.0,), 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ta_topk([(0, (0.5,))], (1.0,), 0)

    @given(points_strategy(2, min_size=1, max_size=25), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_property(self, pts, k):
        items = list(enumerate(pts))
        w = (0.3, 0.7)
        got = [oid for oid, _ in ta_topk(items, w, k)]
        assert got == exhaustive_order(items, w)[: min(k, len(items))]


class TestBRS:
    def test_incremental_emission_is_canonical_order(self, rng):
        items = list(enumerate(random_points(300, 3, rng, tie_heavy=True)))
        tree = build_tree(items, 3)
        w = tuple(random_weights(1, 3, rng)[0])
        search = BRSSearch(tree, w)
        got = []
        while (r := search.next()) is not None:
            got.append(r[0])
        assert got == exhaustive_order(items, w)

    def test_exclusions_applied_lazily(self, rng):
        items = list(enumerate(random_points(100, 2, rng)))
        tree = build_tree(items, 2)
        w = (0.6, 0.4)
        order = exhaustive_order(items, w)
        excluded = set()
        search = BRSSearch(tree, w, excluded)
        assert search.next()[0] == order[0]
        excluded.update(order[1:5])  # removed while search is paused
        assert search.next()[0] == order[5]

    def test_scores_reported(self, rng):
        items = list(enumerate(random_points(50, 2, rng)))
        tree = build_tree(items, 2)
        w = (0.5, 0.5)
        search = BRSSearch(tree, w)
        oid, point, s = search.next()
        assert s == score(w, point)

    def test_empty_tree(self):
        tree = build_tree([], 2)
        assert BRSSearch(tree, (0.5, 0.5)).next() is None

    def test_memory_grows_then_reports(self, rng):
        items = list(enumerate(random_points(500, 3, rng)))
        tree = build_tree(items, 3)
        search = BRSSearch(tree, (0.4, 0.3, 0.3))
        search.next()
        assert search.memory_bytes() > 0
        assert search.heap_size() > 0

    @given(points_strategy(2, min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_full_order(self, pts):
        items = list(enumerate(pts))
        tree = build_tree(items, 2)
        w = (0.25, 0.75)
        search = BRSSearch(tree, w)
        got = []
        while (r := search.next()) is not None:
            got.append(r[0])
        assert got == exhaustive_order(items, w)


class TestOnion:
    def test_layers_partition_input(self, rng):
        items = list(enumerate(random_points(80, 3, rng)))
        onion = OnionIndex(items)
        flattened = sorted(oid for layer in onion.layers for oid, _ in layer)
        assert flattened == sorted(oid for oid, _ in items)

    def test_layer_maxima_non_increasing(self, rng):
        items = list(enumerate(random_points(100, 2, rng)))
        onion = OnionIndex(items)
        w = (0.5, 0.5)
        maxima = [
            max(score(w, p) for _, p in layer) for layer in onion.layers
        ]
        for earlier, later in zip(maxima, maxima[1:]):
            assert later <= earlier + 1e-9

    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_topk_matches_exhaustive(self, k, rng):
        for dims in (2, 3):
            items = list(enumerate(random_points(60, dims, rng)))
            onion = OnionIndex(items)
            w = tuple(random_weights(1, dims, rng)[0])
            got = [oid for oid, _ in onion.topk(w, k)]
            assert got == exhaustive_order(items, w)[: min(k, len(items))]

    def test_duplicates_share_layer(self):
        items = [(0, (1.0, 0.0)), (1, (1.0, 0.0)), (2, (0.5, 0.5)),
                 (3, (0.0, 1.0)), (4, (0.2, 0.2))]
        onion = OnionIndex(items)
        layer1 = {oid for oid, _ in onion.layers[0]}
        assert {0, 1} <= layer1

    def test_degenerate_collinear_input(self):
        # All points on a line: qhull needs the joggle/fallback path.
        items = [(i, (0.1 * i, 0.1 * i)) for i in range(8)]
        onion = OnionIndex(items)
        got = [oid for oid, _ in onion.topk((0.5, 0.5), 3)]
        assert got == [7, 6, 5]

    def test_invalid_k(self, rng):
        onion = OnionIndex([(0, (0.5, 0.5))])
        with pytest.raises(ValueError):
            onion.topk((1.0, 0.0), 0)

    def test_paper_weakness_large_k_expands_layers(self, rng):
        """The paper's criticism: large k forces deep layer expansion."""
        items = list(enumerate(random_points(200, 2, rng)))
        onion = OnionIndex(items)
        w = (0.5, 0.5)
        onion.topk(w, 1)
        shallow = onion.last_layers_expanded
        onion.topk(w, 100)
        deep = onion.last_layers_expanded
        assert deep > shallow
