"""The unified assignment engine — one round loop for every solver.

``AssignmentEngine`` owns the skeleton that SB, its Figure 8
ablations, SB-alt, the two-skyline prioritized variant and Chain all
used to re-implement privately:

1. **emit** — ask the round strategy for this round's stable pairs
   (mutually-best search over the skyline, or a chase step);
2. **commit** — apply the :class:`~repro.engine.protocols.CommitPolicy`
   selection under capacities/priorities through the
   :class:`~repro.core.capacity.CapacityTracker`, recording pairs into
   the :class:`~repro.core.types.Matching` and notifying the strategy
   of exhausted functions/objects;
3. **repair** — hand removed objects to the configured
   :class:`~repro.engine.protocols.SkylineMaintenance`.

Termination mirrors the paper's Algorithm 3: the loop runs while some
capacity remains on both sides, the skyline is non-empty and the pair
source is not exhausted.  Instrumentation (timing, I/O deltas, peak
memory, loop counts) lives in one place —
:class:`~repro.engine.instrumentation.Instrumentation` — instead of
five copies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.data.instances import FunctionSet, ObjectSet
from repro.engine.instrumentation import Instrumentation
from repro.engine.protocols import CommitPolicy, RoundStrategy, SkylineMaintenance
from repro.storage.stats import MemoryTracker


@dataclass
class EngineContext:
    """Everything a strategy may need while solving one instance."""

    functions: FunctionSet
    objects: ObjectSet
    index: ObjectIndex
    caps: CapacityTracker
    matching: Matching
    mem: MemoryTracker


@dataclass(frozen=True)
class EngineConfig:
    """A named solver = three strategy factories over the round loop.

    The factories receive the run's :class:`EngineContext` so strategy
    state (coefficient lists, TA searches, function trees) can be
    sized to the instance.  Configs are cheap, declarative values —
    the Figure 8 ablation variants are just different configs (see
    :mod:`repro.engine.configs`).
    """

    name: str
    build_maintenance: Callable[[EngineContext], SkylineMaintenance]
    build_round: Callable[[EngineContext], RoundStrategy]
    build_commit: Callable[[EngineContext], CommitPolicy]


class AssignmentEngine:
    """Runs one :class:`EngineConfig` on one (functions, index) pair."""

    def __init__(self, config: EngineConfig):
        self.config = config

    def run(
        self, functions: FunctionSet, index: ObjectIndex
    ) -> AssignmentResult:
        inst = Instrumentation(index)
        matching = Matching()
        # Degenerate instances short-circuit with zeroed stats and no
        # strategy-specific counters, uniformly for every config (the
        # pre-refactor chain_assign instead crashed on an empty
        # FunctionSet while reading functions.dims).
        if len(functions) == 0 or len(index.objects) == 0:
            return AssignmentResult(matching, RunStats())

        ctx = EngineContext(
            functions=functions,
            objects=index.objects,
            index=index,
            caps=CapacityTracker(functions, index.objects),
            matching=matching,
            mem=inst.mem,
        )
        maintenance = self.config.build_maintenance(ctx)
        round_strategy = self.config.build_round(ctx)
        commit = self.config.build_commit(ctx)

        phase_start = time.perf_counter()
        skyline = maintenance.compute_initial()
        inst.phase("skyline_initial", time.perf_counter() - phase_start)
        loops, skyline = self._round_loop(
            ctx, maintenance, round_strategy, commit, skyline, inst
        )

        stats = inst.finish(loops)
        round_strategy.finalize(stats, skyline)
        return AssignmentResult(matching, stats)

    # ------------------------------------------------------------------
    # The round loop (Algorithm 3's skeleton)
    # ------------------------------------------------------------------

    def _round_loop(
        self,
        ctx: EngineContext,
        maintenance: SkylineMaintenance,
        round_strategy: RoundStrategy,
        commit: CommitPolicy,
        skyline,
        inst: Instrumentation,
    ) -> tuple[int, object]:
        caps = ctx.caps
        loops = 0
        # Local accumulators, folded into ``inst.phases`` once at loop
        # exit — two perf_counter reads per phase per round, no dict
        # traffic on the hot path.
        search_seconds = commit_seconds = repair_seconds = 0.0
        clock = time.perf_counter
        while not caps.exhausted and skyline:
            loops += 1
            tick = clock()
            proposed = round_strategy.propose(skyline)
            search_seconds += clock() - tick
            if proposed is None:
                break  # pair source exhausted (no alive functions seen)
            if not proposed:
                continue  # non-emitting round (e.g. a chase step)

            tick = clock()
            dead_objects: list[int] = []
            dead_functions: list[int] = []
            for fid, oid, s in commit.select(proposed):
                units, f_died, o_died = caps.assign(fid, oid)
                ctx.matching.add(fid, oid, s, units)
                round_strategy.on_pair_committed(fid, oid, units, f_died, o_died)
                if f_died:
                    dead_functions.append(fid)
                if o_died:
                    dead_objects.append(oid)
            commit_seconds += clock() - tick

            if caps.exhausted:
                break
            if dead_objects:
                tick = clock()
                skyline = maintenance.remove(dead_objects)
                repair_seconds += clock() - tick
            round_strategy.on_round_end(dead_functions)
        inst.phase("search", search_seconds)
        inst.phase("commit", commit_seconds)
        inst.phase("skyline_repair", repair_seconds)
        return loops, skyline
