"""Sorted coefficient lists over the function set ``F``.

Section 5.1: "we propose to index the functions as sorted lists, one
for each coefficient.  List ``L_i`` holds the ``(f.α_i, f)`` pairs of
all functions, sorted on ``f.α_i`` in descending order."  The reverse
top-1 searches of :mod:`repro.topk.reverse` scan these lists TA-style.

Functions assigned to an object are *killed* lazily: list entries stay
in place (a physical rebuild per assignment would be absurd) and scans
skip dead ids; the last *scanned* coefficient remains a valid
threshold bound for all unseen alive functions because lists are
sorted.

``PagedCoefficientLists`` materializes the same lists on simulated
disk pages for the Section 7.6 setting (``F`` too large for memory);
sequential block reads and random accesses are charged to an
:class:`IOStats` so benchmarks can report function-side I/O.
"""

from __future__ import annotations

import numpy as np

from repro.data.instances import FunctionSet
from repro.storage.stats import IOStats


class CoefficientLists:
    """In-memory descending coefficient lists with lazy deletion.

    Besides the plain ``(coef, fid)`` lists, numpy views (``coefs_np``,
    ``fids_np``, ``weights_np``, ``alive_np``) back the batched hot
    path of :class:`repro.topk.reverse.ReverseBestSearch`.
    """

    #: Paged subclasses set this so hot paths skip the no-op charges.
    charges_io = False

    def __init__(self, functions: FunctionSet):
        self.functions = functions
        self.dims = functions.dims
        self.weights = functions.all_effective_weights()
        n = len(functions)
        self.alive = [True] * n
        self.n_alive = n
        self._max_gamma_dirty = False
        self._max_gamma = functions.max_gamma
        # lists[d] = [(coef, fid), ...] sorted by coef desc, fid asc —
        # the fid-ascending tie order makes duplicate functions appear
        # in canonical order, which the termination proofs rely on.
        self.lists: list[list[tuple[float, int]]] = [
            sorted(
                ((self.weights[fid][d], fid) for fid in range(n)),
                key=lambda e: (-e[0], e[1]),
            )
            for d in range(self.dims)
        ]
        # Vectorized views of the same data.
        self.coefs_np = [
            np.array([c for c, _ in lst], dtype=np.float64) for lst in self.lists
        ]
        self.fids_np = [
            np.array([f for _, f in lst], dtype=np.intp) for lst in self.lists
        ]
        self.weights_np = (
            np.array(self.weights, dtype=np.float64)
            if n
            else np.empty((0, self.dims))
        )
        self.alive_np = np.ones(n, dtype=bool)

    def __len__(self) -> int:
        return self.n_alive

    def length(self, dim: int) -> int:
        return len(self.lists[dim])

    def entry(self, dim: int, pos: int) -> tuple[float, int]:
        """``(coefficient, fid)`` at ``pos`` of list ``dim`` (may be dead)."""
        return self.lists[dim][pos]

    def initial_bound(self, dim: int) -> float:
        """Largest coefficient in a list: the pre-scan threshold bound."""
        lst = self.lists[dim]
        return lst[0][0] if lst else 0.0

    def is_alive(self, fid: int) -> bool:
        return self.alive[fid]

    def kill(self, fid: int) -> None:
        """Lazily delete an assigned function."""
        if not self.alive[fid]:
            raise KeyError(f"function {fid} is already dead")
        self.alive[fid] = False
        self.alive_np[fid] = False
        self.n_alive -= 1
        self._max_gamma_dirty = True

    def effective_weights(self, fid: int) -> tuple[float, ...]:
        return self.weights[fid]

    def max_alive_gamma(self) -> float:
        """Knapsack budget ``B`` for the prioritized threshold
        (Section 6.2: ``B`` starts at the largest priority)."""
        if self.functions.gammas is None:
            return 1.0
        if self._max_gamma_dirty:
            alive_gammas = [
                g for fid, g in enumerate(self.functions.gammas) if self.alive[fid]
            ]
            self._max_gamma = max(alive_gammas) if alive_gammas else 1.0
            self._max_gamma_dirty = False
        return self._max_gamma

    # -- I/O charging hooks (no-ops in memory; see the paged subclass) --

    def charge_range(self, dim: int, lo: int, hi: int) -> None:
        """Charge a sequential read of entries [lo, hi) of one list."""

    def charge_random(self, fid: int, skip_dim: int) -> None:
        """Charge random accesses for a newly seen function's other
        coefficients (all lists except ``skip_dim``)."""


class PagedCoefficientLists(CoefficientLists):
    """Disk-resident coefficient lists (Section 7.6).

    Entries are grouped into blocks of ``entries_per_page``; reading a
    block sequentially or random-accessing a function's coefficient in
    another list costs one page access unless the page was the last
    one read on that list (a trivial 1-page-per-list cache, which is
    what "access the lists in a round-robin fashion — one block at a
    time" implies).
    """

    # One (coefficient, fid) entry: 8-byte float + 8-byte id.
    ENTRY_BYTES = 16
    charges_io = True

    def __init__(
        self,
        functions: FunctionSet,
        page_size: int = 4096,
        stats: IOStats | None = None,
    ):
        super().__init__(functions)
        self.entries_per_page = max(1, page_size // self.ENTRY_BYTES)
        self.stats = stats if stats is not None else IOStats()
        # Position of each function in each list, for random access.
        self._positions: list[dict[int, int]] = [
            {fid: pos for pos, (_, fid) in enumerate(lst)} for lst in self.lists
        ]
        self._last_page: list[int | None] = [None] * self.dims

    def _touch(self, dim: int, pos: int) -> None:
        page = pos // self.entries_per_page
        if self._last_page[dim] != page:
            self.stats.record_miss()
            self._last_page[dim] = page
        else:
            self.stats.record_hit()

    def entry(self, dim: int, pos: int) -> tuple[float, int]:
        self._touch(dim, pos)
        return self.lists[dim][pos]

    def random_access(self, fid: int, dim: int) -> float:
        """Fetch one coefficient by function id (charged as a page read)."""
        pos = self._positions[dim][fid]
        self._touch(dim, pos)
        return self.lists[dim][pos][0]

    def num_pages(self) -> int:
        import math

        return sum(
            math.ceil(len(lst) / self.entries_per_page) for lst in self.lists
        )

    def charge_range(self, dim: int, lo: int, hi: int) -> None:
        """Charge the pages covering entries [lo, hi) of list ``dim``
        (used by the batched TA scan of ReverseBestSearch)."""
        if hi <= lo:
            return
        first = lo // self.entries_per_page
        last = (hi - 1) // self.entries_per_page
        for page in range(first, last + 1):
            if self._last_page[dim] != page:
                self.stats.record_miss()
                self._last_page[dim] = page
            else:
                self.stats.record_hit()

    def charge_random(self, fid: int, skip_dim: int) -> None:
        for j in range(self.dims):
            if j != skip_dim:
                self._touch(j, self._positions[j][fid])
