"""A page-granular simulated disk.

``PageFile`` stores fixed-size pages addressed by integer page ids.
It is deliberately dumb: no caching, no free-list compaction — every
read and write is "physical" and is charged to the attached
:class:`~repro.storage.stats.IOStats`.  Caching belongs to
:class:`~repro.storage.buffer.LRUBufferPool`.
"""

from __future__ import annotations

from repro.storage.stats import IOStats

DEFAULT_PAGE_SIZE = 4096


class PageFile:
    """Fixed-page-size simulated disk file.

    Parameters
    ----------
    page_size:
        Page capacity in bytes (paper default: 4096).
    stats:
        Optional shared :class:`IOStats`; a private one is created if
        omitted.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: IOStats | None = None):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._pages: dict[int, bytes] = {}
        self._next_id = 0
        self._free: list[int] = []

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    def allocate(self) -> int:
        """Reserve a page id (reusing freed ids first)."""
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        self._pages[pid] = b""
        return pid

    def write(self, page_id: int, data: bytes) -> None:
        """Write ``data`` to ``page_id``; must fit in one page."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        if len(data) > self.page_size:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self._pages[page_id] = bytes(data)
        self.stats.record_write()

    def read(self, page_id: int) -> bytes:
        """Physically read a page (always charged as a miss)."""
        try:
            data = self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} was never allocated") from None
        self.stats.record_miss()
        return data

    def free(self, page_id: int) -> None:
        """Release a page for reuse."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        del self._pages[page_id]
        self._free.append(page_id)

    def page_ids(self) -> list[int]:
        return sorted(self._pages)
