"""repro — reproduction of "A Fair Assignment Algorithm for Multiple
Preference Queries" (U, Mamoulis, Mouratidis; VLDB 2009).

Compute a fair (stable-marriage) assignment between a set of linear
preference functions and a set of multidimensional objects.

The stable, documented entry surface is :mod:`repro.api`::

    from repro.api import Problem, AssignmentSession

    problem = (
        Problem.builder()
        .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
        .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        .solver("sb")
        .build()
    )
    with AssignmentSession(problem) as session:
        solution = session.solve().verify()
        for pair in solution:
            print(f"user {pair.fid} -> object {pair.oid} ({pair.score:.2f})")

See README.md for the full architecture (engine strategy seams,
service layer, benchmarks reproducing the paper's figures); the
lower-level entry points (``repro.core.solve``, ``repro.engine``,
``repro.service.BatchSolver``) remain available for algorithm work.

The historical top-level helpers ``repro.solve`` and
``repro.build_object_index`` still work but emit a single
``DeprecationWarning`` each — new code should go through
``repro.api``.
"""

import warnings as _warnings

from repro.api import (
    AssignmentSession,
    Problem,
    ProblemBuilder,
    ReproError,
    Solution,
    SolutionDiff,
)
from repro.core import (
    AssignedPair,
    AssignmentResult,
    Matching,
    ObjectIndex,
    RunStats,
)
from repro.core import build_object_index as _build_object_index
from repro.core import solve as _solve
from repro.data.instances import FunctionSet, ObjectSet
from repro.engine import AssignmentEngine, EngineConfig, engine_config
from repro.service import BatchSolver, JobResult, SolveJob

__version__ = "1.7.0"

#: Deprecated top-level names that have already warned (each shim
#: warns exactly once per process).
_DEPRECATION_EMITTED: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_EMITTED:
        return
    _DEPRECATION_EMITTED.add(name)
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


def solve(*args, **kwargs):
    """Deprecated alias of :func:`repro.core.solve`.

    Prefer :class:`repro.api.AssignmentSession` (or ``repro.core.solve``
    for low-level algorithm work).
    """
    _warn_deprecated("solve", "repro.api.AssignmentSession.solve")
    return _solve(*args, **kwargs)


def build_object_index(*args, **kwargs):
    """Deprecated alias of :func:`repro.core.index.build_object_index`.

    Prefer :class:`repro.api.AssignmentSession`, which builds and
    caches the object index itself.
    """
    _warn_deprecated(
        "build_object_index", "repro.api.AssignmentSession (index is managed)"
    )
    return _build_object_index(*args, **kwargs)


__all__ = [
    "AssignedPair",
    "AssignmentEngine",
    "AssignmentResult",
    "AssignmentSession",
    "BatchSolver",
    "EngineConfig",
    "FunctionSet",
    "JobResult",
    "Matching",
    "ObjectIndex",
    "ObjectSet",
    "Problem",
    "ProblemBuilder",
    "ReproError",
    "RunStats",
    "Solution",
    "SolutionDiff",
    "SolveJob",
    "build_object_index",
    "engine_config",
    "solve",
    "__version__",
]
