"""Retention and rendering of finished traces.

Each server/gateway owns one :class:`TraceStore`.  Finished request
trees land in a *recent* LRU (every traced request is briefly
queryable at ``GET /v1/traces/{trace_id}``), and requests over the
configured threshold are additionally pinned in a separate *slow*
store — the slow-solve log — so a latency spike stays inspectable
long after ordinary traffic has churned the recent ring.  Slow-trace
records keep whatever the spans carried, which for solve spans
includes the planner's ``explain()`` transcript.

The pure functions below (:func:`assemble_tree`, :func:`render_tree`)
work on span *dicts*, so the gateway can stitch its local record with
span lists fetched from backends and `repro-admin trace` can render
either server- or gateway-shaped records.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.trace import Span


class TraceStore:
    """Recent-LRU + pinned-slow retention of finished span trees."""

    def __init__(
        self,
        recent_size: int = 256,
        slow_size: int = 64,
        slow_threshold_seconds: float = 0.25,
    ):
        if recent_size < 1 or slow_size < 1:
            raise ValueError("trace store sizes must be >= 1")
        self.recent_size = recent_size
        self.slow_size = slow_size
        self.slow_threshold_seconds = slow_threshold_seconds
        self._guard = threading.Lock()
        self._recent: OrderedDict[str, dict] = OrderedDict()
        self._slow: OrderedDict[str, dict] = OrderedDict()
        self.recorded_total = 0
        self.slow_total = 0

    def record(
        self,
        root: Span,
        spans: list[Span],
        node: str | None = None,
        extra: dict | None = None,
    ) -> dict:
        """Store one finished request's span tree; returns the record.

        ``spans`` is the request's collector output (the root may or
        may not already be in it).  Spans without a node are stamped
        with this store's owner ``node``, so stitched cross-process
        trees show where each span ran.
        """
        seen = {root.span_id}
        all_spans = [root]
        for s in spans:
            if s.span_id not in seen:
                seen.add(s.span_id)
                all_spans.append(s)
        for s in all_spans:
            if s.node is None:
                s.node = node
        duration = root.duration_seconds or 0.0
        slow = duration >= self.slow_threshold_seconds
        record = {
            "trace_id": root.trace_id,
            "root": root.name,
            "status": root.status,
            "started": root.started,
            "duration_seconds": duration,
            "slow": slow,
            "node": node,
            "spans": [s.to_dict() for s in all_spans],
        }
        if extra:
            record.update(extra)
        with self._guard:
            self.recorded_total += 1
            self._recent[root.trace_id] = record
            self._recent.move_to_end(root.trace_id)
            while len(self._recent) > self.recent_size:
                self._recent.popitem(last=False)
            if slow:
                self.slow_total += 1
                self._slow[root.trace_id] = record
                self._slow.move_to_end(root.trace_id)
                while len(self._slow) > self.slow_size:
                    self._slow.popitem(last=False)
        return record

    def get(self, trace_id: str) -> dict | None:
        with self._guard:
            record = self._recent.get(trace_id)
            if record is None:
                record = self._slow.get(trace_id)
            return record

    def recent(self, limit: int = 50) -> list[dict]:
        """Newest-first summaries of recently finished traces."""
        with self._guard:
            records = list(self._recent.values())[-limit:][::-1]
        return [
            {
                "trace_id": r["trace_id"],
                "root": r["root"],
                "status": r["status"],
                "started": r["started"],
                "duration_seconds": r["duration_seconds"],
                "slow": r["slow"],
                "spans": len(r["spans"]),
            }
            for r in records
        ]

    def info(self) -> dict:
        with self._guard:
            return {
                "recorded_total": self.recorded_total,
                "slow_total": self.slow_total,
                "recent_entries": len(self._recent),
                "slow_entries": len(self._slow),
                "slow_threshold_seconds": self.slow_threshold_seconds,
            }


# ---------------------------------------------------------------------------
# span-tree assembly / rendering (pure functions over span dicts)


def assemble_tree(spans: list[dict]) -> list[dict]:
    """Nest flat span dicts into ``{"span": ..., "children": [...]}``
    trees.  Roots are spans whose parent is absent from the list —
    which is exactly right for stitched traces, where the client's
    originating span was never recorded anywhere.

    Children sort by wall-clock start (cross-process clocks are close
    enough at the millisecond scale the engine works in), with derived
    phase spans kept in insertion order after live ones.
    """
    by_id = {s["span_id"]: {"span": s, "children": []} for s in spans}
    roots: list[dict] = []
    for s in spans:
        node = by_id[s["span_id"]]
        parent = by_id.get(s.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)

    def sort_key(node: dict):
        s = node["span"]
        derived = bool((s.get("attributes") or {}).get("derived"))
        return (derived, s.get("started") or 0.0)

    for node in by_id.values():
        node["children"].sort(key=sort_key)
    roots.sort(key=sort_key)
    return roots


def _span_line(node: dict, prefix: str, last: bool) -> str:
    s = node["span"]
    branch = "└─ " if last else "├─ "
    attrs = dict(s.get("attributes") or {})
    derived = attrs.pop("derived", False)
    where = f" [{s['node']}]" if s.get("node") else ""
    duration = s.get("duration_seconds")
    timing = f"{duration * 1000:9.2f} ms" if duration is not None else "        — "
    label = s["name"]
    detail_keys = ("method", "path", "backend", "status")
    details = " ".join(
        str(attrs[k]) for k in detail_keys if k in attrs and attrs[k] is not None
    )
    if details:
        label = f"{label} {details}"
    flags = []
    if s.get("status") == "error":
        flags.append(f"ERROR {s.get('error', '')}".rstrip())
    if derived:
        flags.append("(derived)")
    counters = " ".join(
        f"{k}={attrs[k]}"
        for k in ("io_accesses", "loops", "cache_hit", "index_cache_hit")
        if k in attrs
    )
    if counters:
        flags.append(counters)
    suffix = ("  " + "  ".join(flags)) if flags else ""
    return f"{prefix}{branch}{label:<44} {timing}{where}{suffix}"


def _render_node(node: dict, prefix: str, last: bool, lines: list[str]) -> None:
    lines.append(_span_line(node, prefix, last))
    children = node["children"]
    child_prefix = prefix + ("   " if last else "│  ")
    for i, child in enumerate(children):
        _render_node(child, child_prefix, i == len(children) - 1, lines)


def render_tree(record: dict) -> str:
    """ASCII rendering of a trace record's span tree (the shape
    ``repro-admin trace`` prints)."""
    spans = record.get("spans") or []
    header = (
        f"trace {record.get('trace_id', '?')}"
        f" — {record.get('duration_seconds', 0.0) * 1000:.2f} ms"
        f" — {record.get('status', '?')}"
        f" — {len(spans)} spans"
    )
    if record.get("slow"):
        header += "  [slow]"
    if record.get("stitched"):
        nodes = ", ".join(record.get("nodes") or [])
        header += f"  (stitched: {nodes})"
    lines = [header]
    roots = assemble_tree(spans)
    for i, root in enumerate(roots):
        _render_node(root, "", i == len(roots) - 1, lines)
    explain = record.get("plan_explain")
    if explain:
        lines.append("")
        lines.append("planner transcript:")
        lines.extend(f"  {line}" for line in str(explain).splitlines())
    return "\n".join(lines)


__all__ = ["TraceStore", "assemble_tree", "render_tree"]
