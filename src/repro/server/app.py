"""The asyncio serving layer: router + queue + caches wired together.

One event loop accepts JSON-over-HTTP requests; every solve funnels
through a single :class:`~repro.api.session.AssignmentSession`, so the
R-tree :class:`ObjectIndexCache` inside its :class:`BatchSolver` is
shared across *all* network clients — sixteen concurrent cohorts over
one catalogue build its index exactly once.  Around that sit three
serving concerns the library layers don't have:

- **admission control** — a bounded live-work counter turns overload
  into fast HTTP 429 + ``Retry-After`` instead of unbounded buffering;
- **result caching** — a deterministic engine means an LRU over
  :meth:`Problem.solve_key` serves repeat queries without a solve;
- **single-flight coalescing** — concurrent identical requests await
  one in-flight solve rather than racing N copies of it.

Handlers run on the loop; the actual solving happens on the session's
thread pool and is awaited via ``asyncio.wrap_future``.  The server
can be embedded (:func:`running_server` hosts it on a background
thread for tests/examples) or run standalone via ``python -m
repro.server``.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.api.problem import Problem
from repro.api.session import AssignmentSession
from repro.api.solution import Solution
from repro.planner import AUTO_METHOD
from repro.errors import (
    InvalidProblemError,
    InvalidSolverOptionError,
    ReproError,
    SerdeError,
    UnknownSolverError,
)
from repro.obs.log import LogRing, RingHandler, get_logger
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.store import TraceStore
from repro.obs.trace import (
    TRACE_HEADER,
    SpanCollector,
    TraceContext,
    collecting,
    span,
)
from repro.server.cache import SolutionCache
from repro.server.http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    read_request,
)
from repro.server.jobs import (
    DONE,
    FAILED,
    AdmissionController,
    Job,
    JobStore,
)
from repro.server.metrics import ServerMetrics
from repro.server.router import Router
from repro.service.pool import check_executor

log = get_logger("repro.server")

#: Paths outside the trace pipeline: probe/scrape traffic would churn
#: the trace store, and the observability endpoints must not trace
#: themselves.
_UNTRACED_PREFIXES = ("/healthz", "/metrics", "/v1/traces", "/v1/logs")

#: Read-only paths whose GETs skip tracing: async-job status polls
#: arrive tens of times per solve, so tracing them would both dominate
#: the per-request overhead and evict the solve traces an operator
#: actually wants from the recent store.  The job's own ``job.solve``
#: trace (recorded by the pump) is the inspectable artifact.
_UNTRACED_GET_PREFIXES = ("/v1/jobs",)


def _is_traced(method: str, path: str) -> bool:
    if path.startswith(_UNTRACED_PREFIXES):
        return False
    return not (method == "GET" and path.startswith(_UNTRACED_GET_PREFIXES))

_BAD_REQUEST_ERRORS = (
    SerdeError,
    InvalidProblemError,
    UnknownSolverError,
    InvalidSolverOptionError,
)


class _NotFound(Exception):
    """Internal: a referenced problem/job id does not exist (→ 404)."""


class _Conflict(Exception):
    """Internal: the resource exists but is not in a usable state (→ 409)."""


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`ReproServer`."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (read it back from
    #: :attr:`ReproServer.port` once started).
    port: int = 8000
    #: Admission limit: maximum queued+running solves before 429.
    queue_limit: int = 64
    #: Solve backend: ``"thread"`` (one shared object-index cache, one
    #: R-tree build per catalogue, GIL-bound) or ``"process"`` (a
    #: worker-process pool where each worker owns a private index
    #: replica — same-catalogue solves run truly in parallel with
    #: bit-identical results; see :mod:`repro.service.pool`).
    executor: str = "thread"
    #: Workers in the session's solve pool: threads for the thread
    #: executor, worker processes for the process executor (``None`` =
    #: executor default — CPU count for processes).
    workers: int | None = None
    #: Concurrent async jobs in flight (pump task count).
    pump_tasks: int = 8
    #: LRU bound of the solution cache (0 disables result caching).
    solution_cache_size: int = 256
    #: LRU bound of the shared ObjectIndex cache.
    index_cache_size: int = 32
    #: ``Retry-After`` hint attached to 429 responses, in seconds.
    retry_after_seconds: float = 1.0
    #: Per-request read deadline; a peer that stalls mid-request (or a
    #: half-open connection) is dropped instead of pinning the task
    #: forever.  ``None`` disables the deadline.
    read_timeout_seconds: float | None = 30.0
    max_body_bytes: int = MAX_BODY_BYTES
    #: Finished-job records retained for polling.
    job_history: int = 1024
    #: LRU bound on registered problems (each retains its full
    #: catalogue + cohort); an evicted id 404s and the client simply
    #: re-registers — registration is idempotent by content digest.
    problem_registry_size: int = 4096
    #: Master switch for request tracing + trace retention (structured
    #: logging and the log ring stay on; they replace plain logging).
    observability: bool = True
    #: Requests at or over this wall time are pinned in the slow-trace
    #: store (the slow-solve log) with their planner transcript.
    slow_trace_threshold_seconds: float = 0.25
    #: LRU bound of the recent-trace store.
    trace_store_size: int = 256
    #: LRU bound of the pinned slow-trace store.
    slow_trace_store_size: int = 64
    #: Bounded in-process log ring served at ``GET /v1/logs``.
    log_ring_size: int = 512


class ReproServer:
    """The serving facade; see the module docstring for the shape."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self._validate_config(self.config)
        self.port: int | None = None
        self._problems: OrderedDict[str, Problem] = OrderedDict()
        self._session: AssignmentSession | None = None
        self._solutions = SolutionCache(self.config.solution_cache_size)
        self._metrics = ServerMetrics()
        self._admission = AdmissionController(self.config.queue_limit)
        self._jobs = JobStore(history_limit=self.config.job_history)
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._queue: asyncio.Queue[Job] | None = None
        self._pumps: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._tcp: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._traces = TraceStore(
            recent_size=self.config.trace_store_size,
            slow_size=self.config.slow_trace_store_size,
            slow_threshold_seconds=self.config.slow_trace_threshold_seconds,
        )
        self._log_ring = LogRing(self.config.log_ring_size)
        self._ring_handler: RingHandler | None = None
        self._node: str | None = None
        self._router = self._build_router()

    @staticmethod
    def _validate_config(config: ServerConfig) -> None:
        # queue_limit / solution_cache_size / job_history are validated
        # by the components built from them; check the rest here so a
        # bad flag fails at startup, not as a wedged queue later.
        check_executor(config.executor)
        if config.problem_registry_size < 1:
            raise ValueError("problem_registry_size must be >= 1")
        if config.pump_tasks < 1:
            raise ValueError("pump_tasks must be >= 1")
        if config.workers is not None and config.workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        if config.retry_after_seconds < 0:
            raise ValueError("retry_after_seconds must be >= 0")
        if (
            config.read_timeout_seconds is not None
            and config.read_timeout_seconds <= 0
        ):
            raise ValueError("read_timeout_seconds must be > 0 (or None)")
        if config.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if config.slow_trace_threshold_seconds < 0:
            raise ValueError("slow_trace_threshold_seconds must be >= 0")
        if config.trace_store_size < 1 or config.slow_trace_store_size < 1:
            raise ValueError("trace store sizes must be >= 1")
        if config.log_ring_size < 1:
            raise ValueError("log_ring_size must be >= 1")

    # -- routing -------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self._health)
        router.add("GET", "/metrics", self._metrics_endpoint)
        router.add("POST", "/v1/problems", self._register_endpoint)
        router.add("GET", "/v1/problems/{pid}", self._get_problem)
        router.add("POST", "/v1/problems/{pid}/solve", self._solve_registered)
        router.add("POST", "/v1/solve", self._solve_inline)
        router.add("POST", "/v1/jobs", self._submit_job)
        router.add("GET", "/v1/jobs/{jid}", self._get_job)
        router.add("GET", "/v1/jobs/{jid}/solution", self._get_job_solution)
        router.add("GET", "/v1/diff", self._diff_jobs)
        router.add("GET", "/v1/traces", self._list_traces)
        router.add("GET", "/v1/traces/{tid}", self._get_trace)
        router.add("GET", "/v1/logs", self._get_logs)
        return router

    # -- problem registry / session ------------------------------------

    def _ensure_session(self, problem: Problem) -> AssignmentSession:
        if self._session is None:
            self._session = AssignmentSession(
                problem,
                max_workers=self.config.workers,
                index_cache_size=self.config.index_cache_size,
                executor=self.config.executor,
            )
        return self._session

    def _register(self, problem: Problem) -> tuple[str, bool]:
        problem_id = problem.digest()
        created = problem_id not in self._problems
        self._problems[problem_id] = problem
        self._problems.move_to_end(problem_id)
        while len(self._problems) > self.config.problem_registry_size:
            self._problems.popitem(last=False)
        if created:
            self._ensure_session(problem)
        return problem_id, created

    def _lookup_problem(self, problem_id: str) -> Problem:
        problem = self._problems.get(problem_id)
        if problem is None:
            raise _NotFound(f"unknown problem {problem_id!r}")
        self._problems.move_to_end(problem_id)
        return problem

    def _lookup_job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise _NotFound(f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _apply_overrides(problem: Problem, body: Mapping) -> Problem:
        method = body.get("method")
        options = body.get("options")
        if options is not None and not isinstance(options, Mapping):
            raise SerdeError("'options' must be a JSON object")
        if method is not None:
            if not isinstance(method, str):
                raise SerdeError("'method' must be a string")
            return problem.with_method(method, **dict(options or {}))
        if options:
            return problem.with_options(**dict(options))
        return problem

    def _resolve_target(self, body) -> tuple[str, Problem]:
        """``(problem_id, problem-with-overrides)`` from a request body
        holding either an inline ``problem`` payload (registered as a
        side effect) or a ``problem_id`` reference."""
        if not isinstance(body, Mapping):
            raise SerdeError("request body must be a JSON object")
        if ("problem" in body) == ("problem_id" in body):
            raise SerdeError(
                "request body needs exactly one of 'problem' or 'problem_id'"
            )
        if "problem" in body:
            problem = Problem.from_dict(body["problem"])
            problem_id, _ = self._register(problem)
        else:
            problem_id = body["problem_id"]
            if not isinstance(problem_id, str):
                raise SerdeError("'problem_id' must be a string")
            problem = self._lookup_problem(problem_id)
        return problem_id, self._apply_overrides(problem, body)

    # -- the solve funnel ----------------------------------------------

    def _finalize_solve(
        self, problem: Problem, solution: Solution, cached: bool, elapsed: float
    ) -> Solution:
        """Attribute the served solution to *this* request's plan.

        The plan belongs to the request, not the cache entry: auto and
        explicit picks of one config share a solve key, so a cached
        solution may carry the plan of whichever request populated it.
        An auto request served from an explicit-populated entry must
        still report its (memoized, deterministic — same key, same
        decision) plan and count a planner pick; an explicit request
        replaying an auto-populated entry must carry neither.
        """
        request_plan = (
            problem.plan() if problem.method == AUTO_METHOD else None
        )
        if (solution.plan is None) != (request_plan is None):
            solution = dataclasses.replace(solution, plan=request_plan)
        # Latency histograms key on the *resolved* method, so auto-
        # routed traffic lands in the same histogram as explicit picks
        # of the same config; the planner section of /metrics counts
        # how it was routed.
        self._metrics.record_solve(
            solution.method, elapsed, solution, cached, plan=request_plan
        )
        return solution

    async def _solve(self, problem: Problem) -> tuple[Solution, bool, float]:
        """``(solution, served_from_cache, seconds)`` — cache lookup,
        single-flight coalescing, then the session's thread pool."""
        with span("solve.execute", method=problem.method) as solve_span:
            solution, hit, elapsed = await self._solve_inner(problem)
            solve_span.attributes["cache_hit"] = hit
            solve_span.attributes["resolved_method"] = solution.method
            if solution.plan is not None:
                # Slow traces pin this record, so the planner transcript
                # stays inspectable; the store lifts it off the span
                # into the record.
                solve_span.attributes["plan_explain"] = solution.explain()
            return solution, hit, elapsed

    async def _solve_inner(self, problem: Problem) -> tuple[Solution, bool, float]:
        key = problem.solve_key()  # plans method="auto" (memoized)
        start = time.perf_counter()
        pending = self._inflight.get(key)
        if pending is not None:
            # Coalesce onto the in-flight solve (checked before the
            # cache so followers don't register spurious misses).
            # Shield: a client disconnect cancelling this awaiter must
            # not cancel the shared solve.
            with span("solve.coalesce"):
                solution = await asyncio.shield(pending)
            elapsed = time.perf_counter() - start
            return self._finalize_solve(problem, solution, True, elapsed), True, elapsed
        with span("cache.lookup") as cache_span:
            solution = self._solutions.get(key)
            cache_span.attributes["cache_hit"] = solution is not None
        if solution is not None:
            elapsed = time.perf_counter() - start
            return self._finalize_solve(problem, solution, True, elapsed), True, elapsed
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._inflight[key] = future
        try:
            session = self._ensure_session(problem)
            solution = await asyncio.wrap_future(session.submit(problem))
            self._solutions.put(key, solution)
            future.set_result(solution)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Consume the exception in case no follower is waiting,
                # silencing the "exception was never retrieved" log.
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        elapsed = time.perf_counter() - start
        return self._finalize_solve(problem, solution, False, elapsed), False, elapsed

    def _busy_response(self) -> Response:
        self._metrics.rejected_total += 1
        retry_after = self.config.retry_after_seconds
        return Response.json(
            {
                "error": "solve queue is saturated; retry later",
                "queue_depth": self._admission.depth,
                "queue_limit": self._admission.limit,
                "retry_after_seconds": retry_after,
            },
            status=429,
            **{"Retry-After": f"{retry_after:g}"},
        )

    def _solve_envelope(
        self, problem_id: str, problem: Problem, solution: Solution,
        cache_hit: bool, seconds: float,
    ) -> Response:
        envelope = {
            "problem_id": problem_id,
            "method": problem.method,
            "resolved_method": solution.method,
            "cache_hit": cache_hit,
            "wall_seconds": seconds,
            "solution": solution.to_dict(),
        }
        # ``_finalize_solve`` already normalized the plan to this
        # request (present iff the request asked for method="auto").
        if solution.plan is not None:
            envelope["plan"] = solution.plan.to_dict()
        return Response.json(envelope)

    # -- endpoint handlers ---------------------------------------------

    async def _health(self, request: Request) -> Response:
        # Load-bearing beyond liveness: the cluster gateway's probes
        # read queue_depth / jobs_inflight off this payload to make
        # load-aware decisions, so it stays cheap (no solves, no
        # backend round trips).  Existing keys are stable for compat.
        import repro

        return Response.json(
            {
                "status": "ok",
                "problems": len(self._problems),
                "executor": self.config.executor,
                "version": repro.__version__,
                "uptime_seconds": time.time() - self._metrics.started,
                "queue_depth": self._admission.depth,
                "jobs_inflight": self._jobs.inflight(),
            }
        )

    async def _metrics_endpoint(self, request: Request) -> Response:
        index_info = (
            self._session.cache_info()
            if self._session is not None
            else {"hits": 0, "misses": 0, "entries": 0}
        )
        churn = (
            self._session.churn_info()
            if self._session is not None and self._session.has_churn_state
            else None
        )
        snapshot = self._metrics.snapshot(
            queue=self._admission.info(),
            solution_cache=self._solutions.info(),
            index_cache=index_info,
            churn=churn,
        )
        snapshot["traces"] = self._traces.info()
        snapshot["log_ring"] = self._log_ring.info()
        if wants_prometheus(request):
            return Response(
                body=render_prometheus(snapshot).encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        return Response.json(snapshot)

    async def _register_endpoint(self, request: Request) -> Response:
        payload = request.json()
        if payload is None:
            raise SerdeError("problem registration needs a JSON body")
        with span("problem.register") as register_span:
            problem = Problem.from_dict(payload)
            problem_id, created = self._register(problem)
            register_span.attributes["created"] = created
        if created:
            log.info(
                "problem registered",
                problem_id=problem_id,
                objects=len(problem.objects),
                functions=len(problem.functions),
            )
        return Response.json(
            {
                "problem_id": problem_id,
                "instance_digest": problem.instance_digest(),
                "created": created,
            },
            status=201 if created else 200,
        )

    async def _get_problem(self, request: Request, pid: str) -> Response:
        return Response.json(self._lookup_problem(pid).to_dict())

    def _resolve_registered(self, request: Request, pid: str) -> tuple[str, Problem]:
        problem = self._lookup_problem(pid)
        body = request.json(default={})
        if not isinstance(body, Mapping):
            raise SerdeError("request body must be a JSON object")
        return pid, self._apply_overrides(problem, body)

    async def _solve_registered(self, request: Request, pid: str) -> Response:
        return await self._admitted_solve(
            lambda: self._resolve_registered(request, pid)
        )

    async def _solve_inline(self, request: Request) -> Response:
        return await self._admitted_solve(
            lambda: self._resolve_target(request.json(default={}))
        )

    async def _admitted_solve(
        self, resolve: Callable[[], tuple[str, Problem]]
    ) -> Response:
        # Admission runs before the body is even deserialized: shedding
        # load must stay O(1), not O(problem payload) on the loop.
        if not self._admission.try_acquire():
            return self._busy_response()
        try:
            problem_id, target = resolve()
            solution, hit, seconds = await self._solve(target)
        finally:
            self._admission.release()
        return self._solve_envelope(problem_id, target, solution, hit, seconds)

    async def _submit_job(self, request: Request) -> Response:
        if not self._admission.try_acquire():
            return self._busy_response()
        try:
            problem_id, target = self._resolve_target(request.json(default={}))
            job = self._jobs.create(problem_id, target)
        except BaseException:
            self._admission.release()
            raise
        self._metrics.jobs_submitted += 1
        assert self._queue is not None
        self._queue.put_nowait(job)
        return Response.json(
            {
                "job_id": job.job_id,
                "problem_id": problem_id,
                "method": target.method,
                "status": job.status,
                "queue_depth": self._admission.depth,
            },
            status=202,
        )

    async def _get_job(self, request: Request, jid: str) -> Response:
        job = self._lookup_job(jid)
        include = request.query.get("solution", "1") not in ("0", "false")
        return Response.json(job.to_dict(include_solution=include))

    async def _get_job_solution(self, request: Request, jid: str) -> Response:
        job = self._lookup_job(jid)
        if job.status == FAILED:
            raise _Conflict(f"job {jid} failed: {job.error}")
        if job.status != DONE:
            raise _Conflict(f"job {jid} is still {job.status}")
        assert job.solution is not None
        return Response.json(job.solution.to_dict())

    async def _diff_jobs(self, request: Request) -> Response:
        try:
            id_a, id_b = request.query["a"], request.query["b"]
        except KeyError:
            raise SerdeError(
                "diff needs 'a' and 'b' query parameters (job ids)"
            ) from None
        solutions = []
        for job_id in (id_a, id_b):
            job = self._lookup_job(job_id)
            if job.status != DONE:
                raise _Conflict(f"job {job_id} is {job.status}, cannot diff")
            solutions.append(job.solution)
        diff = solutions[0].diff(solutions[1])
        return Response.json(
            {
                "a": id_a,
                "b": id_b,
                "identical": not diff,
                "units_changed": diff.units_changed,
                "added": [list(t) for t in diff.added],
                "removed": [list(t) for t in diff.removed],
            }
        )

    # -- observability endpoints ---------------------------------------

    async def _list_traces(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise SerdeError("'limit' must be an integer") from None
        return Response.json(
            {"traces": self._traces.recent(limit), "info": self._traces.info()}
        )

    async def _get_trace(self, request: Request, tid: str) -> Response:
        record = self._traces.get(tid)
        if record is None:
            raise _NotFound(f"unknown trace {tid!r}")
        return Response.json(record)

    async def _get_logs(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "100"))
        except ValueError:
            raise SerdeError("'limit' must be an integer") from None
        level = request.query.get("level")
        return Response.json(
            {
                "entries": self._log_ring.tail(limit, level),
                "ring": self._log_ring.info(),
            }
        )

    # -- job pump ------------------------------------------------------

    async def _drain_jobs(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                job.mark_running()
                solution, hit, seconds = await self._run_job_traced(job)
                # One atomic publish: solution / wall_seconds /
                # finished_at land before status flips to "done", so a
                # concurrent poll never sees done-without-solution.
                job.complete(solution, hit, seconds)
                self._metrics.jobs_completed += 1
            except asyncio.CancelledError:
                job.fail("server shut down before the job completed")
                raise
            except Exception as exc:
                job.fail(f"{type(exc).__name__}: {exc}")
                self._metrics.jobs_failed += 1
                if not isinstance(exc, ReproError):
                    log.exception("job failed", job_id=job.job_id)
            finally:
                self._admission.release()
                self._queue.task_done()

    async def _run_job_traced(self, job: Job) -> tuple[Solution, bool, float]:
        """Async jobs solve outside any request's context, so each gets
        its own trace — ``repro-admin trace`` shows per-phase engine
        timings for pumped jobs exactly as for synchronous solves."""
        if not self.config.observability:
            return await self._solve(job.problem)
        collector = SpanCollector()
        try:
            with collecting(collector):
                with span("job.solve", job_id=job.job_id) as root:
                    return await self._solve(job.problem)
        finally:
            spans = collector.spans
            extra = {}
            for s in spans:
                explain = s.attributes.pop("plan_explain", None)
                if explain is not None:
                    extra["plan_explain"] = explain
            record = self._traces.record(
                root, spans, node=self._node, extra=extra or None
            )
            if record["slow"]:
                log.warning(
                    "slow job",
                    job_id=job.job_id,
                    trace_id=root.trace_id,
                    duration_ms=round(record["duration_seconds"] * 1000, 2),
                )

    # -- connection handling -------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        if not self.config.observability or not _is_traced(
            request.method, request.path
        ):
            return await self._dispatch_inner(request)
        parent = TraceContext.parse(request.headers.get("x-repro-trace"))
        collector = SpanCollector()
        with collecting(collector, parent=parent):
            with span(
                "server.request", method=request.method, path=request.path
            ) as root:
                response = await self._dispatch_inner(request)
                root.attributes["status"] = response.status
                if response.status >= 500:
                    root.status = "error"
                    root.error = f"HTTP {response.status}"
        response = self._stamp_trace(response, root.trace_id, root.span_id)
        spans = collector.spans
        extra = {}
        for s in spans:
            explain = s.attributes.pop("plan_explain", None)
            if explain is not None:
                extra["plan_explain"] = explain
        record = self._traces.record(root, spans, node=self._node, extra=extra or None)
        if record["slow"]:
            log.warning(
                "slow request",
                method=request.method,
                path=request.path,
                trace_id=root.trace_id,
                duration_ms=round(record["duration_seconds"] * 1000, 2),
            )
        return response

    @staticmethod
    def _stamp_trace(response: Response, trace_id: str, span_id: str) -> Response:
        """Echo the trace on the response: the header on every reply,
        and ``trace_id`` inside JSON error envelopes so a failure
        report carries its trace handle even through clients that drop
        headers."""
        response.headers[TRACE_HEADER] = f"{trace_id}:{span_id}"
        if response.status >= 400 and response.content_type == "application/json":
            try:
                payload = json.loads(response.body)
            except ValueError:
                return response
            if isinstance(payload, dict) and "trace_id" not in payload:
                payload["trace_id"] = trace_id
                response.body = (
                    json.dumps(payload, sort_keys=True) + "\n"
                ).encode("utf-8")
        return response

    async def _dispatch_inner(self, request: Request) -> Response:
        routed = self._router.dispatch(request)
        if isinstance(routed, Response):
            response = routed
        else:
            handler, params = routed
            try:
                response = await handler(request, **params)
            except _BAD_REQUEST_ERRORS as exc:
                response = Response.error(400, str(exc), type=type(exc).__name__)
            except _NotFound as exc:
                response = Response.error(404, str(exc))
            except _Conflict as exc:
                response = Response.error(409, str(exc))
            except asyncio.CancelledError:
                raise
            except Exception:
                log.exception(
                    "unhandled request error",
                    method=request.method,
                    path=request.path,
                )
                response = Response.error(500, "internal server error")
        self._metrics.record_response(response.status)
        return response

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(
                            reader, max_body_bytes=self.config.max_body_bytes
                        ),
                        timeout=self.config.read_timeout_seconds,
                    )
                except TimeoutError:
                    break  # stalled or idle peer: drop the connection
                except ProtocolError as exc:
                    response = Response.error(exc.status, str(exc))
                    self._metrics.record_response(response.status)
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        # lint: except-ok(client hung up or idled out; nothing to answer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the pump tasks (call on the loop)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._queue = asyncio.Queue()
        self._pumps = [
            self._loop.create_task(
                self._drain_jobs(), name=f"repro-server-pump-{i}"
            )
            for i in range(self.config.pump_tasks)
        ]
        self._tcp = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._tcp.sockets[0].getsockname()[1]
        # Node identity (host:bound-port) is per-server, not
        # per-process: embedded servers and gateways can share one
        # process, so the ring handler and trace store stamp records
        # with their owner's identity at record time.
        self._node = f"{self.config.host}:{self.port}"
        self._ring_handler = RingHandler(self._log_ring, node=self._node)
        repro_logger = logging.getLogger("repro")
        repro_logger.addHandler(self._ring_handler)
        # Embedded servers run without configure_logging(); the ring
        # still captures INFO-level operational events (the last-resort
        # console handler stays WARNING+, so stdout is unchanged).
        if repro_logger.getEffectiveLevel() > logging.INFO:
            repro_logger.setLevel(logging.INFO)
        log.info(
            "server started",
            node=self._node,
            executor=self.config.executor,
            observability=self.config.observability,
        )

    async def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for pump in self._pumps:
            pump.cancel()
        await asyncio.gather(*self._pumps, return_exceptions=True)
        self._pumps = []
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if self._session is not None:
            await asyncio.to_thread(self._session.close)
            self._session = None
        if self._ring_handler is not None:
            logging.getLogger("repro").removeHandler(self._ring_handler)
            self._ring_handler = None

    def request_stop(self) -> None:
        """Thread-safe shutdown signal (used by :class:`ServerHandle`)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    async def _serve_until_stopped(
        self, on_started: Callable[["ReproServer"], None] | None = None
    ) -> None:
        await self.start()
        if on_started is not None:
            on_started(self)
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    def serve_forever(
        self, on_started: Callable[["ReproServer"], None] | None = None
    ) -> None:
        """Run the server on a fresh event loop until stopped."""
        asyncio.run(self._serve_until_stopped(on_started=on_started))


class ServerHandle:
    """A server hosted on a background thread, for tests and examples."""

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.config.host}:{self.port}"

    def close(self, timeout: float = 15.0) -> None:
        self.server.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("repro-server thread did not stop in time")


def serve_in_thread(config: ServerConfig | None = None) -> ServerHandle:
    """Start a :class:`ReproServer` on a daemon thread; returns once
    the socket is bound (so :attr:`ServerHandle.port` is valid)."""
    server = ReproServer(config or ServerConfig(port=0))
    started = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        try:
            server.serve_forever(on_started=lambda _s: started.set())
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)
            started.set()

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    if not started.wait(timeout=15.0):
        raise RuntimeError("repro-server did not start within 15s")
    if failures:
        raise RuntimeError("repro-server failed to start") from failures[0]
    return ServerHandle(server, thread)


@contextlib.contextmanager
def running_server(config: ServerConfig | None = None):
    """``with running_server() as handle:`` — thread-hosted server."""
    handle = serve_in_thread(config)
    try:
        yield handle
    finally:
        handle.close()


__all__ = [
    "ReproServer",
    "ServerConfig",
    "ServerHandle",
    "running_server",
    "serve_in_thread",
]
