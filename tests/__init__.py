"""Test package marker.

Makes ``tests`` an importable package so test modules can do
``from .conftest import ...`` regardless of pytest's import mode or
rootdir — without this, package-relative imports fail at collection
time under the default ``prepend`` import mode.
"""
