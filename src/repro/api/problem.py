"""The immutable :class:`Problem` value object and its fluent builder.

A ``Problem`` is everything needed to reproduce one assignment
instance: the object catalogue (points + capacities), the preference
cohort (weights + priorities + capacities), the solver selection
(named method + keyword options) and the index/storage settings.  It
validates on construction (:class:`~repro.errors.InvalidProblemError`
/ :class:`~repro.errors.UnknownSolverError`), is canonically
normalized (all-1 capacity and priority vectors collapse to ``None``),
and round-trips through versioned dict/JSON serde so instances can
cross a process boundary — the contract a future HTTP layer serves.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from functools import cached_property
from types import MappingProxyType
from typing import Any

from pathlib import Path

from repro.api.serde import (
    PROBLEM_SCHEMA,
    PROBLEM_SCHEMAS,
    SCHEMA_KEY,
    canonical_digest,
    check_payload,
    from_json,
    to_canonical_json,
)
from repro.core import validate_solver_options
from repro.data.instances import FunctionSet, ObjectSet, Point
from repro.errors import InvalidProblemError, SerdeError
from repro.planner import AUTO_METHOD, Plan, explicit_plan, plan_instance

_OPTION_TYPES = (bool, int, float, str, type(None))


def _point_tuple(row: Sequence[float]) -> Point:
    return tuple(float(x) for x in row)


def _normalize_caps(
    caps: Sequence[int] | None, n: int, side: str
) -> tuple[int, ...] | None:
    if caps is None:
        return None
    out = tuple(int(c) for c in caps)
    if len(out) != n:
        raise InvalidProblemError(
            f"{side} capacities must align with the {side}s "
            f"({len(out)} != {n})"
        )
    if all(c == 1 for c in out):
        return None
    return out


@dataclass(frozen=True)
class Problem:
    """One immutable assignment instance plus its solver selection.

    Construct directly, via :meth:`builder`, or via :meth:`from_sets`;
    derive variants with :meth:`with_method` / :meth:`with_functions` /
    :meth:`with_objects` (the instance itself never mutates).
    """

    objects: tuple[Point, ...]
    functions: tuple[Point, ...]
    object_capacities: tuple[int, ...] | None = None
    function_capacities: tuple[int, ...] | None = None
    priorities: tuple[float, ...] | None = None
    method: str = "sb"
    options: Mapping[str, Any] = field(default_factory=dict)
    page_size: int = 4096
    memory_index: bool | None = None
    buffer_fraction: float = 0.02

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "objects", tuple(_point_tuple(p) for p in self.objects))
        set_(self, "functions", tuple(_point_tuple(w) for w in self.functions))
        if not self.objects:
            raise InvalidProblemError("a Problem needs at least one object")
        if not self.functions:
            raise InvalidProblemError("a Problem needs at least one function")
        set_(
            self,
            "object_capacities",
            _normalize_caps(self.object_capacities, len(self.objects), "object"),
        )
        set_(
            self,
            "function_capacities",
            _normalize_caps(self.function_capacities, len(self.functions), "function"),
        )
        if self.priorities is not None:
            gammas = tuple(float(g) for g in self.priorities)
            set_(self, "priorities", None if all(g == 1.0 for g in gammas) else gammas)
        for name, value in dict(self.options).items():
            if not isinstance(name, str) or not isinstance(value, _OPTION_TYPES):
                raise InvalidProblemError(
                    f"solver option {name!r}={value!r} is not a JSON scalar"
                )
        set_(
            self,
            "options",
            MappingProxyType(dict(sorted(dict(self.options).items()))),
        )
        if not isinstance(self.page_size, int) or self.page_size < 64:
            raise InvalidProblemError(
                f"page_size must be an int >= 64, got {self.page_size!r}"
            )
        if not 0.0 < float(self.buffer_fraction) <= 1.0:
            raise InvalidProblemError(
                f"buffer_fraction must be in (0, 1], got {self.buffer_fraction!r}"
            )
        set_(self, "buffer_fraction", float(self.buffer_fraction))
        # Raises UnknownSolverError / InvalidSolverOptionError.
        validate_solver_options(self.method, dict(self.options))
        # Building the instance containers runs their structural
        # validation (dimensionalities, weight sums, capacity floors).
        try:
            oset = ObjectSet(
                list(self.objects),
                capacities=(
                    list(self.object_capacities)
                    if self.object_capacities is not None
                    else None
                ),
            ).freeze()
            fset = FunctionSet(
                list(self.functions),
                gammas=(list(self.priorities) if self.priorities is not None else None),
                capacities=(
                    list(self.function_capacities)
                    if self.function_capacities is not None
                    else None
                ),
            )
        except ValueError as exc:
            raise InvalidProblemError(str(exc)) from exc
        if oset.dims != fset.dims:
            raise InvalidProblemError(
                f"objects are {oset.dims}-dimensional but functions are "
                f"{fset.dims}-dimensional"
            )
        self.__dict__["object_set"] = oset
        self.__dict__["function_set"] = fset

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the
        # MappingProxyType options field; hash its canonical item form.
        return hash(
            (
                self.objects,
                self.functions,
                self.object_capacities,
                self.function_capacities,
                self.priorities,
                self.method,
                tuple(self.options.items()),
                self.page_size,
                self.memory_index,
                self.buffer_fraction,
            )
        )

    # -- instance views ------------------------------------------------

    @cached_property
    def object_set(self) -> ObjectSet:
        """The validated (frozen) :class:`ObjectSet` view."""
        raise AssertionError("populated in __post_init__")

    @cached_property
    def function_set(self) -> FunctionSet:
        """The validated :class:`FunctionSet` view."""
        raise AssertionError("populated in __post_init__")

    @property
    def dims(self) -> int:
        return len(self.objects[0])

    @property
    def num_objects(self) -> int:
        return len(self.objects)

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    # -- construction --------------------------------------------------

    @staticmethod
    def builder() -> "ProblemBuilder":
        return ProblemBuilder()

    @classmethod
    def from_sets(
        cls,
        objects: ObjectSet,
        functions: FunctionSet,
        method: str = "sb",
        options: Mapping[str, Any] | None = None,
        **settings: Any,
    ) -> "Problem":
        """Build a ``Problem`` from existing instance containers."""
        return cls(
            objects=tuple(objects.points),
            functions=tuple(functions.weights),
            object_capacities=(
                tuple(objects.capacities) if objects.capacities is not None else None
            ),
            function_capacities=(
                tuple(functions.capacities)
                if functions.capacities is not None
                else None
            ),
            priorities=(
                tuple(functions.gammas) if functions.gammas is not None else None
            ),
            method=method,
            options=dict(options or {}),
            **settings,
        )

    # -- derivation ----------------------------------------------------

    def _derive(self, **changes: Any) -> "Problem":
        """``dataclasses.replace`` that carries over the validated
        instance containers for the side(s) a change doesn't touch —
        the shared (frozen) ``ObjectSet`` keeps its memoized cache
        fingerprint, so deriving M solver variants of one catalogue
        hashes it once, not M times."""
        derived = dataclasses.replace(self, **changes)
        if not {"objects", "object_capacities"} & changes.keys():
            derived.__dict__["object_set"] = self.object_set
        if not {"functions", "priorities", "function_capacities"} & changes.keys():
            derived.__dict__["function_set"] = self.function_set
        return derived

    def with_method(self, method: str, **options: Any) -> "Problem":
        """A copy solved by a different method (options replaced)."""
        return self._derive(method=method, options=options)

    def with_options(self, **options: Any) -> "Problem":
        """A copy with updated solver options (merged over current)."""
        merged = dict(self.options)
        merged.update(options)
        return self._derive(options=merged)

    def with_functions(
        self,
        functions: Sequence[Sequence[float]],
        priorities: Sequence[float] | None = None,
        capacities: Sequence[int] | None = None,
    ) -> "Problem":
        """A new cohort over the same catalogue (index cache reuse)."""
        return self._derive(
            functions=tuple(_point_tuple(w) for w in functions),
            priorities=tuple(priorities) if priorities is not None else None,
            function_capacities=tuple(capacities) if capacities is not None else None,
        )

    def with_objects(
        self,
        objects: Sequence[Sequence[float]],
        capacities: Sequence[int] | None = None,
    ) -> "Problem":
        """The same cohort over a different catalogue."""
        return self._derive(
            objects=tuple(_point_tuple(p) for p in objects),
            object_capacities=tuple(capacities) if capacities is not None else None,
        )

    # -- serde ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-compatible payload (versioned schema)."""
        return {
            SCHEMA_KEY: PROBLEM_SCHEMA,
            "objects": {
                "points": [list(p) for p in self.objects],
                "capacities": (
                    list(self.object_capacities)
                    if self.object_capacities is not None
                    else None
                ),
            },
            "functions": {
                "weights": [list(w) for w in self.functions],
                "priorities": (
                    list(self.priorities) if self.priorities is not None else None
                ),
                "capacities": (
                    list(self.function_capacities)
                    if self.function_capacities is not None
                    else None
                ),
            },
            "solver": {"method": self.method, "options": dict(self.options)},
            "index": {
                "page_size": self.page_size,
                "memory": self.memory_index,
                "buffer_fraction": self.buffer_fraction,
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Problem":
        check_payload(
            payload,
            PROBLEM_SCHEMAS,  # v2, plus backward-compatible v1 reads
            required={"objects", "functions", "solver"},
            optional={"index"},
        )
        objects = payload["objects"]
        functions = payload["functions"]
        solver = payload["solver"]
        index = payload.get("index") or {}
        for section, name, required_keys, optional_keys in (
            (objects, "objects", {"points"}, {"capacities"}),
            (functions, "functions", {"weights"}, {"priorities", "capacities"}),
            (solver, "solver", {"method"}, {"options"}),
            (index, "index", set(), {"page_size", "memory", "buffer_fraction"}),
        ):
            if not isinstance(section, Mapping):
                raise SerdeError(f"{name!r} section must be a mapping")
            unknown = set(section) - required_keys - optional_keys
            if unknown:
                raise SerdeError(
                    f"{name!r} section has unknown field(s) {sorted(unknown)}"
                )
            missing = required_keys - set(section)
            if missing:
                raise SerdeError(f"{name!r} section missing field(s) {sorted(missing)}")
        caps = objects.get("capacities")
        fcaps = functions.get("capacities")
        gammas = functions.get("priorities")
        return cls(
            objects=tuple(tuple(p) for p in objects["points"]),
            functions=tuple(tuple(w) for w in functions["weights"]),
            object_capacities=tuple(caps) if caps is not None else None,
            function_capacities=tuple(fcaps) if fcaps is not None else None,
            priorities=tuple(gammas) if gammas is not None else None,
            method=solver["method"],
            options=dict(solver.get("options") or {}),
            page_size=index.get("page_size", 4096),
            memory_index=index.get("memory"),
            buffer_fraction=index.get("buffer_fraction", 0.02),
        )

    def to_json(self) -> str:
        return to_canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str | bytes) -> "Problem":
        return cls.from_dict(from_json(text))

    def to_file(self, path: str | Path) -> Path:
        """Write the canonical JSON payload to ``path``; returns it."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_file(cls, path: str | Path) -> "Problem":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise SerdeError(f"cannot read problem file {path!s}: {exc}") from exc
        return cls.from_json(text)

    # -- content addressing --------------------------------------------

    def digest(self) -> str:
        """Stable content address of the whole problem (catalogue,
        cohort, solver selection, index settings) — the registration
        identity at a service boundary."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = self.__dict__["_digest"] = canonical_digest(self.to_dict())
        return cached

    def instance_digest(self) -> str:
        """Content address of the *instance* alone: the solver section
        is excluded, so ``p.with_method(...)`` variants share it (and
        thus share index/result cache locality downstream)."""
        cached = self.__dict__.get("_instance_digest")
        if cached is None:
            payload = self.to_dict()
            del payload["solver"]
            cached = self.__dict__["_instance_digest"] = canonical_digest(payload)
        return cached

    # -- planning ------------------------------------------------------

    def plan(self) -> Plan:
        """The planner's decision for this problem (memoized).

        For ``method="auto"`` this profiles the instance and scores
        every plannable registry config; for an explicit method it is
        the trivial plan (``explain()`` works either way).  The
        decision is a pure, deterministic function of the instance, so
        memoizing it on this immutable value object makes "resolve
        once per solve key" hold everywhere the problem travels.
        """
        cached = self.__dict__.get("_plan")
        if cached is None:
            if self.method == AUTO_METHOD:
                cached = plan_instance(self.function_set, self.object_set)
            else:
                cached = explicit_plan(self.method, dict(self.options))
            self.__dict__["_plan"] = cached
        return cached

    @property
    def resolved_method(self) -> str:
        """The concrete method a solve will run: ``method`` itself, or
        the planner's pick when ``method="auto"``."""
        return self.plan().method

    def explain(self) -> str:
        """Human-readable transcript of :meth:`plan`."""
        return self.plan().explain()

    def solve_key(self) -> tuple[str, str, str]:
        """``(instance_digest, resolved method, canonical options
        JSON)`` — the result-cache identity used by
        :mod:`repro.server`: two problems with this key equal produce
        bit-identical solutions.  The *resolved* method (see
        :attr:`resolved_method`) keys the cache, so ``method="auto"``
        shares cache entries with an explicit pick of the same config
        — a planner-routed solve and a hand-routed one are the same
        computation."""
        plan = self.plan()
        return (
            self.instance_digest(),
            plan.method,
            to_canonical_json(plan.options_dict()),
        )


class ProblemBuilder:
    """Fluent, mutable accumulator for a :class:`Problem`.

    Every method returns ``self``; :meth:`build` validates and freezes
    the accumulated state into an immutable ``Problem``::

        problem = (
            Problem.builder()
            .add_object((0.5, 0.6), capacity=2)
            .add_function((0.8, 0.2), priority=2.0)
            .solver("sb", omega_fraction=0.05)
            .build()
        )
    """

    def __init__(self) -> None:
        self._objects: list[Point] = []
        self._object_caps: list[int] = []
        self._functions: list[Point] = []
        self._function_caps: list[int] = []
        self._priorities: list[float] = []
        self._method = "sb"
        self._options: dict[str, Any] = {}
        self._page_size = 4096
        self._memory_index: bool | None = None
        self._buffer_fraction = 0.02

    def add_object(self, point: Sequence[float], capacity: int = 1) -> "ProblemBuilder":
        self._objects.append(_point_tuple(point))
        self._object_caps.append(int(capacity))
        return self

    def add_objects(
        self,
        points: Sequence[Sequence[float]],
        capacities: Sequence[int] | None = None,
    ) -> "ProblemBuilder":
        if capacities is not None and len(capacities) != len(points):
            raise InvalidProblemError("capacities must align with points")
        for i, point in enumerate(points):
            self.add_object(point, 1 if capacities is None else capacities[i])
        return self

    def add_function(
        self,
        weights: Sequence[float],
        capacity: int = 1,
        priority: float = 1.0,
    ) -> "ProblemBuilder":
        self._functions.append(_point_tuple(weights))
        self._function_caps.append(int(capacity))
        self._priorities.append(float(priority))
        return self

    def add_functions(
        self,
        weights: Sequence[Sequence[float]],
        priorities: Sequence[float] | None = None,
        capacities: Sequence[int] | None = None,
    ) -> "ProblemBuilder":
        for seq, what in ((priorities, "priorities"), (capacities, "capacities")):
            if seq is not None and len(seq) != len(weights):
                raise InvalidProblemError(f"{what} must align with weights")
        for i, w in enumerate(weights):
            self.add_function(
                w,
                capacity=1 if capacities is None else capacities[i],
                priority=1.0 if priorities is None else priorities[i],
            )
        return self

    def solver(self, method: str, **options: Any) -> "ProblemBuilder":
        """Select the solver; keyword arguments become its options."""
        self._method = method
        self._options = dict(options)
        return self

    def options(self, **options: Any) -> "ProblemBuilder":
        self._options.update(options)
        return self

    def page_size(self, page_size: int) -> "ProblemBuilder":
        self._page_size = int(page_size)
        return self

    def memory_index(self, memory: bool | None) -> "ProblemBuilder":
        self._memory_index = memory
        return self

    def buffer_fraction(self, fraction: float) -> "ProblemBuilder":
        self._buffer_fraction = float(fraction)
        return self

    def build(self) -> Problem:
        return Problem(
            objects=tuple(self._objects),
            functions=tuple(self._functions),
            object_capacities=tuple(self._object_caps) or None,
            function_capacities=tuple(self._function_caps) or None,
            priorities=tuple(self._priorities) or None,
            method=self._method,
            options=dict(self._options),
            page_size=self._page_size,
            memory_index=self._memory_index,
            buffer_fraction=self._buffer_fraction,
        )


__all__ = ["Problem", "ProblemBuilder"]
