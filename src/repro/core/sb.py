"""SB — the paper's Skyline-Based stable assignment (Sections 4.2–5.3).

The solver maintains the skyline of the remaining objects (only
skyline objects can appear in stable pairs) and, per loop:

1. finds for every skyline object its best alive function via the
   resumable reverse top-1 searches of :mod:`repro.topk.reverse`
   (Section 5.1: TA over sorted coefficient lists, fractional-knapsack
   threshold, biased probing, Ω-bounded heaps);
2. finds for every candidate function its best skyline object
   (a scan of the in-memory skyline);
3. emits every mutually-best pair (Property 2; Section 5.3's
   multiple-pairs-per-loop enhancement), honoring capacities
   (Section 6.1) and priorities (Section 6.2, via effective weights
   and the ``B = max γ`` knapsack budget);
4. removes assigned objects and repairs the skyline with the
   I/O-optimal UpdateSkyline (Section 5.2) — or with DeltaSky when
   running the Figure 8 ablation.

All of Section 5's optimizations are switchable so the benchmarks can
reproduce Figure 8:

=====================  ========================================
``variant="sb"``        everything on (the paper's SB)
``variant="sb-update"`` Algorithm 1 + UpdateSkyline only
                        (fresh round-robin TA per loop, one pair
                        per loop) — "SB-UpdateSkyline"
``variant="sb-deltasky"``  Algorithm 1 + DeltaSky maintenance
=====================  ========================================
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.core.vectorized import MatrixView
from repro.data.instances import FunctionSet
from repro.ordering import pair_key
from repro.skyline.deltasky import DeltaSkyManager
from repro.skyline.maintenance import UpdateSkylineManager
from repro.storage.stats import MemoryTracker
from repro.topk.reverse import ReverseBestSearch, SearchCounters
from repro.topk.sorted_lists import CoefficientLists, PagedCoefficientLists

VARIANTS = ("sb", "sb-update", "sb-deltasky")


def sb_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    variant: str = "sb",
    omega_fraction: float | None = 0.025,
    multi_pair: bool | None = None,
    biased: bool | None = None,
    resume: bool | None = None,
    maintenance: str | None = None,
    paged_function_lists: int | None = None,
) -> AssignmentResult:
    """Skyline-based stable assignment.

    ``variant`` presets the optimization toggles; individual keyword
    arguments override the preset (for ablation benchmarks).
    ``omega_fraction`` is the paper's ω (default 2.5%, Section 7);
    ``None`` disables the Ω bound entirely.

    ``paged_function_lists`` materializes the coefficient lists on
    simulated disk pages of the given size (the Section 7.6 setting
    where F does not fit in memory); the per-object TA searches then
    charge list-page I/O, which is reported alongside the object-tree
    I/O (compare with :func:`repro.core.sb_alt.sb_alt_assign`).
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    optimized = variant == "sb"
    if multi_pair is None:
        multi_pair = optimized
    if biased is None:
        biased = optimized
    if resume is None:
        resume = optimized
    if maintenance is None:
        maintenance = "deltasky" if variant == "sb-deltasky" else "update-skyline"

    start = time.perf_counter()
    io_before = index.stats.snapshot()
    mem = MemoryTracker()
    matching = Matching()
    caps = CapacityTracker(functions, index.objects)
    objects = index.objects
    counters = SearchCounters()

    if len(functions) == 0 or len(objects) == 0:
        return AssignmentResult(matching, RunStats())

    if paged_function_lists is None:
        lists = CoefficientLists(functions)
    else:
        lists = PagedCoefficientLists(functions, page_size=paged_function_lists)
    omega = None
    if optimized and omega_fraction is not None:
        omega = max(1, int(omega_fraction * len(functions)))

    if maintenance == "update-skyline":
        manager = UpdateSkylineManager(index.tree, mem)
    elif maintenance == "deltasky":
        manager = DeltaSkyManager(index.tree, mem)
    else:
        raise ValueError(f"unknown maintenance {maintenance!r}")
    skyline = manager.compute_initial()

    searches: dict[int, ReverseBestSearch] = {}
    ta_state_bytes = 0

    def best_function(oid: int) -> tuple[int, float] | None:
        """Best alive function for a skyline object (Section 5.1)."""
        nonlocal ta_state_bytes
        if not resume:
            fresh = ReverseBestSearch(
                lists, objects.points[oid], omega=None, biased=biased,
                counters=counters,
            )
            result = fresh.best()
            # Transient state: only its momentary size counts.
            mem.set_gauge("ta_states", fresh.memory_bytes())
            return result
        search = searches.get(oid)
        if search is None:
            search = ReverseBestSearch(
                lists, objects.points[oid], omega=omega, biased=biased,
                counters=counters,
            )
            searches[oid] = search
        ta_state_bytes -= search.memory_bytes()
        result = search.best()
        ta_state_bytes += search.memory_bytes()
        mem.set_gauge("ta_states", ta_state_bytes)
        return result

    loops = 0
    exhausted_functions = False
    while not caps.exhausted and skyline and not exhausted_functions:
        loops += 1

        # (a) best alive function of every skyline object.
        fbest: dict[int, tuple[int, float]] = {}
        for oid in sorted(skyline):
            result = best_function(oid)
            if result is None:
                exhausted_functions = True
                break
            fbest[oid] = result
        if exhausted_functions:
            break

        # (b) best skyline object of every candidate function
        #     (vectorized canonical scan of the in-memory skyline).
        skyline_view = MatrixView.from_dict(skyline)
        candidate_fids = sorted({fid for fid, _ in fbest.values()})
        obest: dict[int, int] = {}
        for fid in candidate_fids:
            w = functions.effective_weights(fid)
            obest[fid] = skyline_view.best_for(w)[0]

        # (c) mutually-best pairs (Property 2).
        stable = [
            (fid, obest[fid], fbest[obest[fid]][1])
            for fid in candidate_fids
            if fbest[obest[fid]][0] == fid
        ]
        if not multi_pair:
            # Algorithm 1: emit only the single globally best pair.
            stable = [min(
                stable,
                key=lambda t: pair_key(
                    t[2], functions.effective_weights(t[0]), t[0],
                    objects.points[t[1]], t[1],
                ),
            )]

        # (d) apply assignments; collect objects leaving the problem.
        removed_objects: list[int] = []
        for fid, oid, s in stable:
            units, f_died, o_died = caps.assign(fid, oid)
            matching.add(fid, oid, s, units)
            if f_died:
                lists.kill(fid)
            if o_died:
                removed_objects.append(oid)
                dead = searches.pop(oid, None)
                if dead is not None:
                    ta_state_bytes -= dead.memory_bytes()
                    mem.set_gauge("ta_states", ta_state_bytes)

        # (e) skyline maintenance (Section 5.2 / Figure 8 ablation).
        if removed_objects and not caps.exhausted:
            skyline = manager.remove(removed_objects)

    io = index.stats.delta_since(io_before)
    stats = RunStats(
        io=io,
        cpu_seconds=time.perf_counter() - start,
        peak_memory_bytes=mem.peak_bytes,
        loops=loops,
        counters={
            "ta_sorted_accesses": counters.sorted_accesses,
            "ta_random_accesses": counters.random_accesses,
            "ta_restarts": counters.restarts,
            "skyline_final_size": len(skyline),
        },
    )
    if paged_function_lists is not None:
        stats.counters["function_list_reads"] = lists.stats.physical_reads
        stats.counters["object_reads"] = io.physical_reads
        io.physical_reads += lists.stats.physical_reads
        io.logical_reads += lists.stats.logical_reads
    return AssignmentResult(matching, stats)


def sb_variants() -> Iterable[str]:
    return VARIANTS
