"""The asyncio gateway: consistent-hash routing over a server fleet.

``repro-gateway`` fronts N ``repro-server`` backends and speaks the
*same* JSON-over-HTTP protocol, so any :class:`~repro.server.Client`
pointed at the gateway works unchanged.  Three concerns live here, on
top of the :class:`~repro.cluster.forwarder.Fleet`:

- **sticky sharding** — every request is keyed by the problem's
  ``instance_digest`` and forwarded to that key's ring owner, so each
  catalogue's R-tree index is built on exactly one node and stays hot
  (method/option overrides share the shard: the digest excludes the
  solver section).  Job ids come back prefixed ``{node_id}@{job_id}``,
  so polls route by prefix without any gateway-side job state.
- **failover** — dead backends are skipped via the ring's successor
  list (request-path transport failures mark down immediately; the
  background prober also sweeps ``/healthz``).  The gateway remembers
  registration payloads in a bounded LRU, so when a solve re-shards to
  a successor that has never seen the problem (404), it re-registers
  and retries once — clients ride through a backend death without
  re-sending anything.  A shard with no live replica answers 503 +
  ``Retry-After``.
- **fleet observability** — ``/metrics`` reports per-backend health
  and forward-latency histograms, re-shard/retry counters, and a
  fleet-wide aggregation (summed solve/cache/planner/engine counters
  across live backends); ``/healthz`` reports ring membership.

The gateway keeps no solver, no session and no cache of its own —
results, admission control (429s propagate untouched) and planner
decisions all belong to the backends, which plan deterministically, so
any replica of a shard returns the bit-identical solution.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
import time
from collections import Counter, OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass

from repro.api.problem import Problem
from repro.api.solution import Solution
from repro.cluster.forwarder import Fleet
from repro.cluster.probe import Backend, HealthProber
from repro.errors import (
    InvalidProblemError,
    InvalidSolverOptionError,
    SerdeError,
    ServerBusyError,
    ServerError,
    ServerUnavailableError,
    UnknownSolverError,
)
from repro.obs.log import LogRing, RingHandler, get_logger
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.store import TraceStore
from repro.obs.trace import (
    TRACE_HEADER,
    SpanCollector,
    TraceContext,
    collecting,
    span,
)
from repro.server.http import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    read_request,
)
from repro.server.metrics import LatencyHistogram
from repro.server.router import Router

log = get_logger("repro.cluster")

#: Probe/scrape and observability paths stay outside the trace
#: pipeline, and job-status poll GETs skip it too (same rule as the
#: server: polls arrive tens of times per solve and would churn the
#: trace store with noise).
_UNTRACED_PREFIXES = ("/healthz", "/metrics", "/v1/traces", "/v1/logs")

_UNTRACED_GET_PREFIXES = ("/v1/jobs",)


def _is_traced(method: str, path: str) -> bool:
    if path.startswith(_UNTRACED_PREFIXES):
        return False
    return not (method == "GET" and path.startswith(_UNTRACED_GET_PREFIXES))

_BAD_REQUEST_ERRORS = (
    SerdeError,
    InvalidProblemError,
    UnknownSolverError,
    InvalidSolverOptionError,
)

#: Backend /metrics sections the fleet aggregation sums, leaf by leaf.
#: Quantiles, high-water marks and per-method histograms are *not*
#: summable and stay per-backend (see the ``backends`` section).
_SUMMED_SECTIONS: dict[str, tuple[str, ...]] = {
    "solves": ("total", "cache_hits"),
    "solution_cache": ("hits", "misses", "evictions", "entries"),
    "index_cache": ("hits", "misses", "entries"),
    "queue": (
        "depth",
        "limit",
        "rejected_total",
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
    ),
    "engine": (
        "physical_reads",
        "logical_reads",
        "physical_writes",
        "cpu_seconds",
    ),
}


class _NotFound(Exception):
    """Internal: the gateway has no routing entry for this id (→ 404)."""


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one :class:`ReproGateway`."""

    #: Backend authorities (``host:port``), one per ``repro-server``.
    backends: tuple[str, ...] = ()
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port.
    port: int = 8100
    #: Virtual nodes per backend on the hash ring.
    vnodes: int = 256
    #: Seconds between background ``/healthz`` sweeps.
    probe_interval_seconds: float = 2.0
    #: Per-probe HTTP timeout.
    probe_timeout_seconds: float = 2.0
    #: Consecutive probe failures before a backend is marked down
    #: (request-path transport failures mark down immediately).
    down_after: int = 2
    #: Per-forward HTTP timeout (covers the backend's solve time).
    forward_timeout_seconds: float = 120.0
    #: ``Retry-After`` hint on 503 responses (no live shard owner).
    retry_after_seconds: float = 1.0
    #: Per-request read deadline on gateway connections.
    read_timeout_seconds: float | None = 30.0
    max_body_bytes: int = MAX_BODY_BYTES
    #: LRU bound on remembered registration payloads (the failover
    #: re-registration store; an evicted problem simply 404s and the
    #: client re-registers, exactly as against a bare server).
    problem_registry_size: int = 4096
    #: Master switch for request tracing + trace retention.
    observability: bool = True
    #: Requests at or over this wall time pin in the slow-trace store.
    slow_trace_threshold_seconds: float = 0.25
    #: LRU bound of the recent-trace store.
    trace_store_size: int = 256
    #: LRU bound of the pinned slow-trace store.
    slow_trace_store_size: int = 64
    #: Bounded in-process log ring served at ``GET /v1/logs``.
    log_ring_size: int = 512

    @staticmethod
    def normalize_address(address: str) -> str:
        """``http://host:port/`` / ``host:port`` → ``host:port``."""
        if address.startswith("http://"):
            address = address[len("http://") :]
        return address.rstrip("/")


class GatewayMetrics:
    """Gateway-local counters (all touched from the event loop only)."""

    def __init__(self) -> None:
        self.started = time.time()
        self.requests_total = 0
        self.responses_by_status: Counter[int] = Counter()
        #: End-to-end forward latency per backend address.
        self.forward_latency: dict[str, LatencyHistogram] = {}

    def record_response(self, status: int) -> None:
        self.requests_total += 1
        self.responses_by_status[status] += 1

    def record_forward(self, address: str, seconds: float) -> None:
        histogram = self.forward_latency.get(address)
        if histogram is None:
            histogram = self.forward_latency[address] = LatencyHistogram()
        histogram.observe(seconds)


class ReproGateway:
    """The gateway facade; see the module docstring for the shape."""

    def __init__(self, config: GatewayConfig):
        addresses = tuple(
            GatewayConfig.normalize_address(a) for a in config.backends
        )
        self.config = config
        self.port: int | None = None
        self._fleet = Fleet(
            addresses,
            vnodes=config.vnodes,
            forward_timeout=config.forward_timeout_seconds,
            probe_timeout=config.probe_timeout_seconds,
            down_after=config.down_after,
            retry_after_seconds=config.retry_after_seconds,
        )
        self._prober = HealthProber(
            list(self._fleet.backends.values()),
            interval=config.probe_interval_seconds,
        )
        self._metrics = GatewayMetrics()
        #: pid → {"instance_digest", "payload"} — the routing map plus
        #: the failover re-registration store, LRU-bounded.
        self._problems: OrderedDict[str, dict] = OrderedDict()
        self._conn_tasks: set[asyncio.Task] = set()
        self._tcp: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._traces = TraceStore(
            recent_size=config.trace_store_size,
            slow_size=config.slow_trace_store_size,
            slow_threshold_seconds=config.slow_trace_threshold_seconds,
        )
        self._log_ring = LogRing(config.log_ring_size)
        self._ring_handler: RingHandler | None = None
        self._node: str | None = None
        self._router = self._build_router()

    # -- routing table -------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self._health)
        router.add("GET", "/metrics", self._metrics_endpoint)
        router.add("POST", "/v1/problems", self._register_endpoint)
        router.add("GET", "/v1/problems/{pid}", self._get_problem)
        router.add("POST", "/v1/problems/{pid}/solve", self._solve_registered)
        router.add("POST", "/v1/solve", self._solve_inline)
        router.add("POST", "/v1/jobs", self._submit_job)
        router.add("GET", "/v1/jobs/{jid}", self._get_job)
        router.add("GET", "/v1/jobs/{jid}/solution", self._get_job_solution)
        router.add("GET", "/v1/diff", self._diff_jobs)
        router.add("GET", "/v1/traces", self._list_traces)
        router.add("GET", "/v1/traces/{tid}", self._get_trace)
        router.add("GET", "/v1/logs", self._get_logs)
        return router

    # -- problem routing state -----------------------------------------

    def _remember(self, problem: Problem, payload: dict) -> str:
        pid = problem.digest()
        self._problems[pid] = {
            "instance_digest": problem.instance_digest(),
            "payload": payload,
        }
        self._problems.move_to_end(pid)
        while len(self._problems) > self.config.problem_registry_size:
            self._problems.popitem(last=False)
        return pid

    def _routing_entry(self, pid: str) -> dict:
        entry = self._problems.get(pid)
        if entry is None:
            raise _NotFound(
                f"unknown problem {pid!r} — register it through the "
                "gateway first (routing needs its instance digest)"
            )
        self._problems.move_to_end(pid)
        return entry

    # -- forwarding plumbing -------------------------------------------

    async def _forward(self, key: str, fn):
        """Fleet.forward on a worker thread + latency accounting."""
        started = time.perf_counter()
        backend, result = await asyncio.to_thread(self._fleet.forward, key, fn)
        self._metrics.record_forward(
            backend.address, time.perf_counter() - started
        )
        return backend, result

    async def _call(self, backend: Backend, fn):
        """Fleet.call (single-backend, job polls) on a worker thread."""
        started = time.perf_counter()
        result = await asyncio.to_thread(self._fleet.call, backend, fn)
        self._metrics.record_forward(
            backend.address, time.perf_counter() - started
        )
        return result

    def _reregistering(self, path: str, body, entry: dict | None):
        """A forward fn for ``POST path`` that heals a post-failover
        404 by re-registering the remembered payload and retrying once
        on the same backend."""

        def fn(backend: Backend):
            try:
                return backend.client.request("POST", path, body)
            except ServerError as exc:
                if exc.status == 404 and entry is not None:
                    with span("gateway.reregister", backend=backend.address):
                        backend.client.request(
                            "POST", "/v1/problems", entry["payload"]
                        )
                        self._fleet.count_reregistration()
                    return backend.client.request("POST", path, body)
                raise

        return fn

    @staticmethod
    def _require_mapping(body) -> Mapping:
        if not isinstance(body, Mapping):
            raise SerdeError("request body must be a JSON object")
        return body

    async def _resolve_inline_target(self, body) -> tuple[str, dict | None, dict]:
        """``(routing key, registry entry, body-to-forward)`` for a
        ``/v1/solve`` or ``/v1/jobs`` payload carrying exactly one of
        ``problem`` (inline, parsed off-loop for its digest) or
        ``problem_id`` (resolved from the gateway's routing map)."""
        body = self._require_mapping(body)
        if ("problem" in body) == ("problem_id" in body):
            raise SerdeError(
                "request body needs exactly one of 'problem' or 'problem_id'"
            )
        if "problem" in body:
            problem = await asyncio.to_thread(Problem.from_dict, body["problem"])
            pid = self._remember(problem, problem.to_dict())
            return problem.instance_digest(), self._problems[pid], dict(body)
        pid = body["problem_id"]
        if not isinstance(pid, str):
            raise SerdeError("'problem_id' must be a string")
        entry = self._routing_entry(pid)
        return entry["instance_digest"], entry, dict(body)

    # -- endpoint handlers ---------------------------------------------

    async def _health(self, request: Request) -> Response:
        import repro

        alive = len(self._fleet.alive_backends())
        configured = len(self._fleet.backends)
        status = "ok" if alive == configured else ("degraded" if alive else "down")
        return Response.json(
            {
                "status": status,
                "role": "gateway",
                "version": repro.__version__,
                "uptime_seconds": time.time() - self._metrics.started,
                "backends": {
                    backend.address: backend.snapshot()
                    for backend in self._fleet.backends.values()
                },
                "ring": {
                    "members": sorted(self._fleet.ring.members),
                    "vnodes_per_backend": self._fleet.ring.vnodes,
                    "alive": alive,
                    "configured": configured,
                },
                "problems_routed": len(self._problems),
            }
        )

    async def _metrics_endpoint(self, request: Request) -> Response:
        fleet_totals, unreachable = await self._aggregate_fleet_metrics()
        snapshot = {
            "uptime_seconds": time.time() - self._metrics.started,
            "http": {
                "requests_total": self._metrics.requests_total,
                "responses_by_status": {
                    str(status): n
                    for status, n in sorted(
                        self._metrics.responses_by_status.items()
                    )
                },
            },
            "gateway": {
                **self._fleet.info(),
                "probe_cycles": self._prober.cycles,
                "probe_interval_seconds": self._prober.interval,
            },
            "backends": {
                backend.address: backend.snapshot()
                for backend in self._fleet.backends.values()
            },
            "forward_latency": {
                address: histogram.to_dict()
                for address, histogram in sorted(
                    self._metrics.forward_latency.items()
                )
            },
            "fleet": {**fleet_totals, "unreachable": unreachable},
            "traces": self._traces.info(),
            "log_ring": self._log_ring.info(),
        }
        if wants_prometheus(request):
            return Response(
                body=render_prometheus(snapshot).encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        return Response.json(snapshot)

    async def _aggregate_fleet_metrics(self) -> tuple[dict, list[str]]:
        """Summed counters across every live backend's ``/metrics``."""
        backends = self._fleet.alive_backends()

        def fetch(backend: Backend):
            try:
                return backend.address, backend.probe_client.metrics()
            except Exception:
                return backend.address, None

        snapshots = await asyncio.gather(
            *(asyncio.to_thread(fetch, backend) for backend in backends)
        )
        totals: dict = {
            section: dict.fromkeys(keys, 0)
            for section, keys in _SUMMED_SECTIONS.items()
        }
        planner_picks: Counter[str] = Counter()
        requests_total = 0
        reporting, unreachable = 0, []
        for address, snapshot in snapshots:
            if snapshot is None:
                unreachable.append(address)
                continue
            reporting += 1
            for section, keys in _SUMMED_SECTIONS.items():
                values = snapshot.get(section, {})
                for key in keys:
                    value = values.get(key)
                    if isinstance(value, (int, float)):
                        totals[section][key] += value
            planner = snapshot.get("planner", {})
            planner_picks.update(planner.get("picks", {}))
            http_section = snapshot.get("http", {})
            requests_total += http_section.get("requests_total", 0)
        totals["planner"] = {
            "picks": dict(sorted(planner_picks.items())),
            "auto_solves": sum(planner_picks.values()),
        }
        totals["http"] = {"requests_total": requests_total}
        totals["backends_reporting"] = reporting
        return totals, unreachable

    async def _register_endpoint(self, request: Request) -> Response:
        payload = request.json()
        if payload is None:
            raise SerdeError("problem registration needs a JSON body")
        problem = await asyncio.to_thread(Problem.from_dict, payload)
        pid = self._remember(problem, problem.to_dict())
        entry = self._problems[pid]
        backend, (status, body) = await self._forward(
            entry["instance_digest"],
            lambda b: b.client.request("POST", "/v1/problems", entry["payload"]),
        )
        body["backend"] = backend.address
        return Response.json(body, status=status)

    async def _get_problem(self, request: Request, pid: str) -> Response:
        entry = self._routing_entry(pid)
        _, (status, body) = await self._forward(
            entry["instance_digest"],
            self._reregistering_get(f"/v1/problems/{pid}", entry),
        )
        return Response.json(body, status=status)

    def _reregistering_get(self, path: str, entry: dict | None):
        def fn(backend: Backend):
            try:
                return backend.client.request("GET", path)
            except ServerError as exc:
                if exc.status == 404 and entry is not None:
                    with span("gateway.reregister", backend=backend.address):
                        backend.client.request(
                            "POST", "/v1/problems", entry["payload"]
                        )
                        self._fleet.count_reregistration()
                    return backend.client.request("GET", path)
                raise

        return fn

    async def _solve_registered(self, request: Request, pid: str) -> Response:
        entry = self._routing_entry(pid)
        overrides = self._require_mapping(request.json(default={}))
        backend, (status, body) = await self._forward(
            entry["instance_digest"],
            self._reregistering(
                f"/v1/problems/{pid}/solve", dict(overrides) or None, entry
            ),
        )
        body["backend"] = backend.address
        return Response.json(body, status=status)

    async def _solve_inline(self, request: Request) -> Response:
        key, entry, body = await self._resolve_inline_target(
            request.json(default={})
        )
        backend, (status, payload) = await self._forward(
            key, self._reregistering("/v1/solve", body, entry)
        )
        payload["backend"] = backend.address
        return Response.json(payload, status=status)

    async def _submit_job(self, request: Request) -> Response:
        key, entry, body = await self._resolve_inline_target(
            request.json(default={})
        )
        backend, (status, payload) = await self._forward(
            key, self._reregistering("/v1/jobs", body, entry)
        )
        # Prefix the job id with the owning node, so later polls route
        # by prefix alone — the gateway keeps no job table.
        payload["job_id"] = f"{backend.node_id}@{payload['job_id']}"
        payload["backend"] = backend.address
        return Response.json(payload, status=status)

    def _job_backend(self, jid: str) -> tuple[Backend, str]:
        try:
            return self._fleet.backend_for_job(jid)
        except KeyError as exc:
            raise _NotFound(str(exc)) from None

    async def _get_job(self, request: Request, jid: str) -> Response:
        backend, raw_id = self._job_backend(jid)
        include = request.query.get("solution", "1") not in ("0", "false")
        suffix = "" if include else "?solution=0"
        status, body = await self._call(
            backend,
            lambda b: b.client.request("GET", f"/v1/jobs/{raw_id}{suffix}"),
        )
        if isinstance(body, dict) and "job_id" in body:
            body["job_id"] = jid
            body["backend"] = backend.address
        return Response.json(body, status=status)

    async def _get_job_solution(self, request: Request, jid: str) -> Response:
        backend, raw_id = self._job_backend(jid)
        status, body = await self._call(
            backend,
            lambda b: b.client.request("GET", f"/v1/jobs/{raw_id}/solution"),
        )
        return Response.json(body, status=status)

    async def _diff_jobs(self, request: Request) -> Response:
        try:
            id_a, id_b = request.query["a"], request.query["b"]
        except KeyError:
            raise SerdeError(
                "diff needs 'a' and 'b' query parameters (job ids)"
            ) from None
        backend_a, raw_a = self._job_backend(id_a)
        backend_b, raw_b = self._job_backend(id_b)
        if backend_a is backend_b:
            # Same node: its own /v1/diff does the work.
            status, body = await self._call(
                backend_a,
                lambda b: b.client.request(
                    "GET", f"/v1/diff?a={raw_a}&b={raw_b}"
                ),
            )
            body["a"], body["b"] = id_a, id_b
            return Response.json(body, status=status)
        # Jobs live on different nodes: fetch both solutions and diff
        # here — the value objects make the delta a local computation.
        payload_a, payload_b = await asyncio.gather(
            self._call(
                backend_a,
                lambda b: b.client.request("GET", f"/v1/jobs/{raw_a}/solution"),
            ),
            self._call(
                backend_b,
                lambda b: b.client.request("GET", f"/v1/jobs/{raw_b}/solution"),
            ),
        )

        def compute() -> dict:
            solution_a = Solution.from_dict(payload_a[1])
            solution_b = Solution.from_dict(payload_b[1])
            diff = solution_a.diff(solution_b)
            return {
                "a": id_a,
                "b": id_b,
                "identical": not diff,
                "units_changed": diff.units_changed,
                "added": [list(t) for t in diff.added],
                "removed": [list(t) for t in diff.removed],
            }

        return Response.json(await asyncio.to_thread(compute))

    # -- observability endpoints ---------------------------------------

    async def _list_traces(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise SerdeError("'limit' must be an integer") from None
        return Response.json(
            {"traces": self._traces.recent(limit), "info": self._traces.info()}
        )

    async def _get_trace(self, request: Request, tid: str) -> Response:
        """The stitched cross-backend view of one trace: the gateway's
        own record merged with whatever each live backend retained
        under the same trace id — a failover's failed forward, the
        re-registration, and the successor's re-solve reassemble into
        one tree because every span carries the same trace id."""
        local = self._traces.get(tid)

        def fetch(backend: Backend):
            try:
                return backend.probe_client.request("GET", f"/v1/traces/{tid}")[1]
            except Exception:
                return None  # 404s and dead backends just contribute nothing

        remotes = await asyncio.gather(
            *(
                asyncio.to_thread(fetch, backend)
                for backend in self._fleet.alive_backends()
            )
        )
        records = ([local] if local is not None else []) + [
            r for r in remotes if isinstance(r, dict)
        ]
        if not records:
            raise _NotFound(f"unknown trace {tid!r}")
        spans: list[dict] = []
        seen: set[str] = set()
        for record in records:
            for s in record.get("spans", ()):
                span_id = s.get("span_id")
                if span_id in seen:
                    continue
                seen.add(span_id)
                spans.append(s)
        spans.sort(key=lambda s: s.get("started") or 0.0)
        base = local if local is not None else records[0]
        stitched = {
            "trace_id": tid,
            "root": base.get("root"),
            "status": base.get("status"),
            "started": base.get("started"),
            "duration_seconds": base.get("duration_seconds"),
            "slow": any(r.get("slow") for r in records),
            "stitched": True,
            "nodes": sorted({s["node"] for s in spans if s.get("node")}),
            "spans": spans,
        }
        for record in records:
            if record.get("plan_explain"):
                stitched["plan_explain"] = record["plan_explain"]
                break
        return Response.json(stitched)

    async def _get_logs(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "100"))
        except ValueError:
            raise SerdeError("'limit' must be an integer") from None
        level = request.query.get("level")
        return Response.json(
            {
                "entries": self._log_ring.tail(limit, level),
                "ring": self._log_ring.info(),
            }
        )

    # -- connection handling -------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        if not self.config.observability or not _is_traced(
            request.method, request.path
        ):
            return await self._dispatch_inner(request)
        parent = TraceContext.parse(request.headers.get("x-repro-trace"))
        collector = SpanCollector()
        with collecting(collector, parent=parent):
            with span(
                "gateway.request", method=request.method, path=request.path
            ) as root:
                response = await self._dispatch_inner(request)
                root.attributes["status"] = response.status
                if response.status >= 500:
                    root.status = "error"
                    root.error = f"HTTP {response.status}"
        response.headers[TRACE_HEADER] = f"{root.trace_id}:{root.span_id}"
        if response.status >= 400 and response.content_type == "application/json":
            try:
                payload = json.loads(response.body)
            except ValueError:
                payload = None
            if isinstance(payload, dict) and "trace_id" not in payload:
                payload["trace_id"] = root.trace_id
                response.body = (
                    json.dumps(payload, sort_keys=True) + "\n"
                ).encode("utf-8")
        record = self._traces.record(root, collector.spans, node=self._node)
        if record["slow"]:
            log.warning(
                "slow request",
                method=request.method,
                path=request.path,
                trace_id=root.trace_id,
                duration_ms=round(record["duration_seconds"] * 1000, 2),
            )
        return response

    async def _dispatch_inner(self, request: Request) -> Response:
        routed = self._router.dispatch(request)
        if isinstance(routed, Response):
            response = routed
        else:
            handler, params = routed
            try:
                response = await handler(request, **params)
            except ServerBusyError as exc:
                # Backend admission control: propagate 429 untouched so
                # the caller's Retry-After loop keeps working.
                response = self._relay_error(exc, 429)
                response.headers["Retry-After"] = f"{exc.retry_after:g}"
            except ServerUnavailableError as exc:
                response = self._relay_error(exc, 503)
                response.headers["Retry-After"] = f"{exc.retry_after:g}"
            except _BAD_REQUEST_ERRORS as exc:
                response = Response.error(400, str(exc), type=type(exc).__name__)
            except _NotFound as exc:
                response = Response.error(404, str(exc))
            except ServerError as exc:
                # Any other backend HTTP error relays verbatim (502 if
                # the backend failed without a usable status).
                response = self._relay_error(exc, exc.status or 502)
            except asyncio.CancelledError:
                raise
            except Exception:
                log.exception(
                    "unhandled request error",
                    method=request.method,
                    path=request.path,
                )
                response = Response.error(500, "internal gateway error")
        self._metrics.record_response(response.status)
        return response

    @staticmethod
    def _relay_error(exc: ServerError, status: int) -> Response:
        payload = exc.payload if isinstance(exc.payload, dict) else None
        return Response.json(payload or {"error": str(exc)}, status=status)

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(
                            reader, max_body_bytes=self.config.max_body_bytes
                        ),
                        timeout=self.config.read_timeout_seconds,
                    )
                except TimeoutError:
                    break  # stalled or idle peer: drop the connection
                except ProtocolError as exc:
                    response = Response.error(exc.status, str(exc))
                    self._metrics.record_response(response.status)
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        # lint: except-ok(client hung up or idled out; nothing to answer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start probing (call on the loop)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # Settle initial liveness before serving: a backend already
        # dead at boot needs down_after consecutive failures to be
        # marked down, so sweep that many times — it gets marked now,
        # not on the first unlucky request.
        for _ in range(self.config.down_after):
            await asyncio.to_thread(self._prober.probe_all)
        self._prober.start()
        self._tcp = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._tcp.sockets[0].getsockname()[1]
        self._node = f"{self.config.host}:{self.port}"
        self._ring_handler = RingHandler(self._log_ring, node=self._node)
        repro_logger = logging.getLogger("repro")
        repro_logger.addHandler(self._ring_handler)
        # Embedded gateways run without configure_logging(); the ring
        # still captures INFO-level operational events (the last-resort
        # console handler stays WARNING+, so stdout is unchanged).
        if repro_logger.getEffectiveLevel() > logging.INFO:
            repro_logger.setLevel(logging.INFO)

    async def stop(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        await asyncio.to_thread(self._prober.close)
        await asyncio.to_thread(self._fleet.close)
        if self._ring_handler is not None:
            logging.getLogger("repro").removeHandler(self._ring_handler)
            self._ring_handler = None

    def request_stop(self) -> None:
        """Thread-safe shutdown signal (used by :class:`GatewayHandle`)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    async def _serve_until_stopped(self, on_started=None) -> None:
        await self.start()
        if on_started is not None:
            on_started(self)
        assert self._stop_event is not None
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    def serve_forever(self, on_started=None) -> None:
        """Run the gateway on a fresh event loop until stopped."""
        asyncio.run(self._serve_until_stopped(on_started=on_started))


class GatewayHandle:
    """A gateway hosted on a background thread, for tests/benchmarks."""

    def __init__(self, gateway: ReproGateway, thread: threading.Thread):
        self.gateway = gateway
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.gateway.port is not None
        return self.gateway.port

    @property
    def base_url(self) -> str:
        return f"http://{self.gateway.config.host}:{self.port}"

    def close(self, timeout: float = 15.0) -> None:
        self.gateway.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("repro-gateway thread did not stop in time")


def serve_gateway_in_thread(config: GatewayConfig) -> GatewayHandle:
    """Start a :class:`ReproGateway` on a daemon thread; returns once
    the socket is bound (so :attr:`GatewayHandle.port` is valid)."""
    gateway = ReproGateway(config)
    started = threading.Event()
    failures: list[BaseException] = []

    def _run() -> None:
        try:
            gateway.serve_forever(on_started=lambda _g: started.set())
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)
            started.set()

    thread = threading.Thread(target=_run, name="repro-gateway", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("repro-gateway did not start within 30s")
    if failures:
        raise RuntimeError("repro-gateway failed to start") from failures[0]
    return GatewayHandle(gateway, thread)


@contextlib.contextmanager
def running_gateway(config: GatewayConfig):
    """``with running_gateway(cfg) as handle:`` — thread-hosted gateway."""
    handle = serve_gateway_in_thread(config)
    try:
        yield handle
    finally:
        handle.close()


__all__ = [
    "GatewayConfig",
    "GatewayHandle",
    "GatewayMetrics",
    "ReproGateway",
    "running_gateway",
    "serve_gateway_in_thread",
]
