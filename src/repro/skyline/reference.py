"""Reference (naive) skyline and dominance helpers.

Ground truth for every other skyline implementation: a point survives
iff no other point dominates it (paper Section 2.2's definition —
coincident points do not dominate each other, so duplicates are all
skyline members).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtree.geometry import dominates

Point = tuple[float, ...]


def naive_skyline(items: Sequence[tuple[int, Point]]) -> dict[int, Point]:
    """O(n²) skyline of ``(id, point)`` pairs -> ``{id: point}``."""
    out: dict[int, Point] = {}
    for oid, p in items:
        if not any(dominates(q, p) for qid, q in items if qid != oid):
            out[oid] = p
    return out


def is_skyline_of(
    skyline: dict[int, Point], items: Sequence[tuple[int, Point]]
) -> bool:
    """Check that ``skyline`` is exactly the skyline of ``items``."""
    return skyline == naive_skyline(items)


def dominators_of(
    p: Point, items: Sequence[tuple[int, Point]]
) -> list[tuple[int, Point]]:
    """All items dominating ``p`` (for diagnostics and tests)."""
    return [(oid, q) for oid, q in items if dominates(q, p)]
