"""Deterministic consistent-hash ring with virtual nodes.

Shard routing for the gateway: ``instance_digest → backend address``.
Every node is planted at ``vnodes`` pseudo-random points on a 64-bit
ring (256 by default — enough that three nodes split 1k keys
within ~10% of even), each point derived from SHA-256 of ``"{node}#{replica}"`` — no
process-local salting (unlike builtin ``hash``), so every gateway
process, today and after a restart, maps every key to the same owner.
A key's owner is the first node point clockwise from the key's own
hash; the nodes after it (in ring order, distinct) form the key's
*successor list*, which is exactly the re-shard order when owners are
down.

The two properties the tests pin down:

- **balance** — with enough virtual nodes the arc lengths even out,
  so K keys over N nodes land within a few percent of K/N each;
- **minimal movement** — removing a node hands only *its* arcs to the
  respective successors: keys owned by surviving nodes do not move.
  (The gateway never removes dead nodes from the ring — it skips them
  via the successor list — so a recovered backend rejoins with its
  ring positions, and therefore its key ownership, intact.)
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort


def ring_hash(data: str) -> int:
    """Position of ``data`` on the 64-bit ring (SHA-256 prefix)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing over named nodes with virtual-node points."""

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), vnodes: int = 256):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted ``(point, node)`` pairs — the ring itself.
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._members:
            return
        self._members.add(node)
        for replica in range(self.vnodes):
            insort(self._points, (ring_hash(f"{node}#{replica}"), node))

    def remove(self, node: str) -> None:
        if node not in self._members:
            return
        self._members.discard(node)
        self._points = [entry for entry in self._points if entry[1] != node]

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    # -- lookup --------------------------------------------------------

    def preference(self, key: str) -> list[str]:
        """All members in ring order starting at ``key``'s position.

        The head is the key's owner; the tail is the re-shard order if
        the owner (and successive successors) are down.  Deterministic
        for a given membership set, across processes and restarts.
        """
        if not self._points:
            return []
        start = bisect_right(self._points, (ring_hash(key), chr(0x10FFFF)))
        ordered: list[str] = []
        seen: set[str] = set()
        count = len(self._points)
        for offset in range(count):
            node = self._points[(start + offset) % count][1]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(seen) == len(self._members):
                    break
        return ordered

    def owner(self, key: str, alive=None) -> str | None:
        """The first member on ``key``'s successor list that ``alive``
        admits (``alive`` is a container or predicate; ``None`` = all)."""
        for node in self.preference(key):
            if alive is None:
                return node
            admitted = alive(node) if callable(alive) else node in alive
            if admitted:
                return node
        return None


__all__ = ["HashRing", "ring_hash"]
