"""The process execution backend: per-worker index replicas must be
observationally identical to the thread backend — bit-identical pairs
*and* exact per-run I/O counters — across every engine config.

The module-scoped process solver amortizes worker spawn cost across
the tests (each worker pays one interpreter + numpy import).
"""

import pytest

from repro.api import AssignmentSession, Problem
from repro.engine import engine_config
from repro.service import BatchSolver, SolveJob
from repro.service.pool import check_executor, job_to_payload, solve_payload

from .conftest import random_instance

ENGINE_CONFIGS = (
    "sb", "sb-update", "sb-deltasky", "sb-alt", "sb-two-skylines", "chain",
)


def make_problem(nf=7, no=30, dims=3, seed=11, **kwargs):
    functions, objects = random_instance(nf, no, dims, seed=seed, **kwargs)
    return Problem.from_sets(objects, functions, method="sb")


def job_for(problem, method):
    return SolveJob(
        functions=problem.function_set,
        objects=problem.object_set,
        method=method,
    )


@pytest.fixture(scope="module")
def process_solver():
    with BatchSolver(executor="process", max_workers=2) as solver:
        yield solver


def deterministic_signature(job_result):
    """Everything about a run that must not vary across backends:
    the pairs bit for bit plus the exact measured-work counters."""
    stats = job_result.result.stats
    return (
        [
            (p.fid, p.oid, p.score, p.count)
            for p in job_result.result.matching.pairs
        ],
        stats.io.physical_reads,
        stats.io.logical_reads,
        stats.io.physical_writes,
        stats.loops,
        stats.peak_memory_bytes,
        dict(stats.counters),
    )


def test_process_backend_bit_identical_across_all_engine_configs(
    process_solver,
):
    problem = make_problem()
    jobs = [job_for(problem, method) for method in ENGINE_CONFIGS]
    thread_results = BatchSolver(executor="thread").solve_many(jobs)
    process_results = process_solver.solve_many(
        [job_for(problem, method) for method in ENGINE_CONFIGS]
    )
    for method, thread_res, process_res in zip(
        ENGINE_CONFIGS, thread_results, process_results
    ):
        assert deterministic_signature(process_res) == (
            deterministic_signature(thread_res)
        ), method


def test_process_backend_capacities_and_priorities(process_solver):
    problem = make_problem(
        nf=6, no=20, seed=3, capacities=True, priorities=True
    )
    job = job_for(problem, "sb-two-skylines")
    thread_res = BatchSolver(executor="thread").solve_one(job)
    process_res = process_solver.solve_one(
        job_for(problem, "sb-two-skylines")
    )
    assert deterministic_signature(process_res) == (
        deterministic_signature(thread_res)
    )


def test_worker_replicas_reuse_built_indexes(process_solver):
    """Same-catalogue jobs hit the per-worker replica after at most one
    build per worker; a solve on the replica is a cache hit."""
    problem = make_problem(seed=29)
    before = process_solver.cache_info()
    jobs = [job_for(problem, "sb") for _ in range(4)]
    results = process_solver.solve_many(jobs)
    after = process_solver.cache_info()
    builds = after["misses"] - before["misses"]
    hits = after["hits"] - before["hits"]
    assert builds + hits == 4
    assert builds <= after["workers"]       # at most one build per worker
    assert hits >= 4 - after["workers"]
    assert [r.index_cache_hit for r in results].count(False) == builds


def test_process_executor_rejects_custom_engine_configs(process_solver):
    problem = make_problem(seed=5)
    job = job_for(problem, engine_config("sb"))
    with pytest.raises(ValueError, match="EngineConfig"):
        process_solver.solve_one(job)
    # a bad job anywhere in a batch fails fast, before any dispatch —
    # valid jobs earlier in the batch are not orphaned on workers
    before = process_solver.cache_info()
    with pytest.raises(ValueError, match="EngineConfig"):
        process_solver.solve_many([job_for(problem, "sb"), job])
    after = process_solver.cache_info()
    assert (after["hits"], after["misses"]) == (
        before["hits"], before["misses"],
    )


def test_job_payload_matches_canonical_problem_sections():
    """The payload crossing the process boundary is the same canonical
    schema :meth:`Problem.to_dict` serves over the wire."""
    problem = make_problem(seed=7, capacities=True, priorities=True)
    payload = job_to_payload(job_for(problem, "sb"))
    canonical = problem.to_dict()
    assert payload["objects"] == canonical["objects"]
    assert payload["functions"] == canonical["functions"]
    assert payload["solver"] == {"method": "sb", "options": {}}
    assert payload["index"]["page_size"] == canonical["index"]["page_size"]
    # a payload round trip solves identically in-process too
    result, hit = solve_payload(payload)
    direct = BatchSolver().solve_one(job_for(problem, "sb"))
    assert [
        (p.fid, p.oid, p.score, p.count) for p in result.matching.pairs
    ] == [
        (p.fid, p.oid, p.score, p.count)
        for p in direct.result.matching.pairs
    ]


def test_session_process_executor_solves_and_submits():
    problem = make_problem(seed=17)
    with AssignmentSession(problem) as thread_session:
        expected = thread_session.solve()
    with AssignmentSession(
        problem, executor="process", max_workers=1
    ) as session:
        assert session.executor == "process"
        solution = session.solve()
        assert solution.to_dict()["pairs"] == expected.to_dict()["pairs"]
        future = session.submit()
        assert future.result().to_dict()["pairs"] == (
            expected.to_dict()["pairs"]
        )
        info = session.cache_info()
        assert info["misses"] >= 1 and info["workers"] == 1
    assert session.closed                   # close() released the pool


def test_broken_pool_is_discarded_and_rebuilt():
    """A worker dying (OOM-kill, segfault) breaks the whole
    ProcessPoolExecutor; the backend must discard it and serve later
    solves from a fresh pool instead of failing until restart."""
    import os
    import signal

    from concurrent.futures.process import BrokenProcessPool

    from repro.service.pool import ProcessPoolSolver

    solver = ProcessPoolSolver(max_workers=1)
    try:
        problem = make_problem(seed=41)
        expected = deterministic_signature(
            BatchSolver().solve_one(job_for(problem, "sb"))
        )
        first = solver.solve_one(job_for(problem, "sb"))
        assert deterministic_signature(first) == expected
        for pid in list(solver._executor._processes):
            os.kill(pid, signal.SIGKILL)
        # Depending on when the executor notices the dead worker, the
        # next job either fails with BrokenProcessPool (discarded via
        # the done-callback) or is transparently retried on a fresh
        # pool at submit time.  Either way the backend must recover.
        try:
            solver.solve_one(job_for(problem, "sb"))
        except BrokenProcessPool:
            pass
        recovered = solver.solve_one(job_for(problem, "sb"))
        assert deterministic_signature(recovered) == expected
        assert solver.info()["pool_restarts"] >= 1
    finally:
        solver.close()


def test_executor_validation():
    with pytest.raises(ValueError, match="executor"):
        BatchSolver(executor="fibers")
    with pytest.raises(ValueError, match="executor"):
        check_executor("")
    assert check_executor("thread") == "thread"
    assert check_executor("process") == "process"
    from repro.service.pool import ProcessPoolSolver

    with pytest.raises(ValueError, match="max_workers"):
        ProcessPoolSolver(max_workers=0)  # not a silent full-CPU pool


def test_discard_broken_is_idempotent_and_logs_captured_count(monkeypatch):
    """Regression: two racing done-callbacks for the same broken
    executor must discard it once (one restart counted), and the
    restart count each one logs is captured under the pool guard, not
    re-read after release."""
    from repro.service import pool as pool_module
    from repro.service.pool import ProcessPoolSolver

    logged = []
    monkeypatch.setattr(
        pool_module.log,
        "warning",
        lambda msg, **fields: logged.append(fields),
    )

    class StubExecutor:
        def __init__(self):
            self.shutdowns = 0

        def shutdown(self, wait=True, cancel_futures=False):
            self.shutdowns += 1

    solver = ProcessPoolSolver(max_workers=1)
    broken = StubExecutor()
    solver._executor = broken
    solver._discard_broken(broken)
    solver._discard_broken(broken)  # stale second callback: no re-count
    assert solver.pool_restarts == 1
    assert broken.shutdowns == 2  # shutdown itself is idempotent
    assert [f["restarts"] for f in logged] == [1, 1]
